#include "compiler/sweep.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "cost/calibrate.h"
#include "cost/cost_cache.h"
#include "tech/techlib_parser.h"
#include "util/assert.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace sega {

namespace {

// ------------------------------------------------------------- spec JSON

std::optional<SweepSpec> spec_fail(const std::string& msg,
                                   std::string* error) {
  if (error) *error = msg;
  return std::nullopt;
}

/// The result-affecting fields in JSON form — the shared core of to_json()
/// and the checkpoint config fingerprint, so the two can never drift.
/// Excludes threads, the shard, the checkpoint path and the cache-file path
/// (none of them changes any cell's result — the shard only selects which
/// cells a process computes, and shard files must share the unsharded
/// fingerprint so a merge can vouch they belong to the same sweep).
Json result_affecting_json(const SweepSpec& spec) {
  Json j = Json::object();
  Json ws = Json::array();
  for (const std::int64_t w : spec.wstores) ws.push_back(w);
  j["wstores"] = std::move(ws);
  Json ps = Json::array();
  for (const Precision& p : spec.precisions) ps.push_back(p.name);
  j["precisions"] = std::move(ps);
  j["supply_v"] = spec.conditions.supply_v;
  j["sparsity"] = spec.conditions.input_sparsity;
  j["activity"] = spec.conditions.activity;
  j["max_l"] = spec.limits.max_l;
  j["max_h"] = spec.limits.max_h;
  j["max_n"] = spec.limits.max_n;
  j["min_n_over_bw"] = spec.limits.min_n_over_bw;
  j["population"] = spec.dse.population;
  j["generations"] = spec.dse.generations;
  j["crossover_prob"] = spec.dse.crossover_prob;
  j["mutation_prob"] = spec.dse.mutation_prob;
  j["seed"] = static_cast<std::int64_t>(spec.dse.seed);
  j["cost_model"] = cost_model_kind_name(spec.cost_model);
  // Only-when-enabled, like the calibration fingerprint: layout-off specs
  // keep their serialization (and thus the checkpoint config fingerprint)
  // byte-identical to pre-layout releases, and the exact-match header check
  // rejects layout-on/layout-off cross-resume in both directions.
  if (spec.layout) j["layout"] = true;
  return j;
}

}  // namespace

std::optional<SweepSpec> SweepSpec::from_json(const Json& json,
                                              std::string* error) {
  if (!json.is_object()) return spec_fail("sweep spec must be a JSON object",
                                          error);
  SweepSpec spec;
  for (const auto& [key, value] : json.items()) {
    // Scalar keys are type-checked before the typed accessors: a wrong type
    // must be a parse error, never a precondition abort.
    const bool is_scalar_key = key != "wstores" && key != "precisions" &&
                               key != "checkpoint" && key != "cache_file" &&
                               key != "calibration_file" &&
                               key != "cost_model" && key != "layout";
    if (is_scalar_key && !value.is_number()) {
      return spec_fail(strfmt("spec key '%s' must be a number", key.c_str()),
                       error);
    }
    if (key == "wstores") {
      if (!value.is_array() || value.size() == 0) {
        return spec_fail("wstores must be a non-empty array", error);
      }
      spec.wstores.clear();
      for (std::size_t i = 0; i < value.size(); ++i) {
        if (!value.at(i).is_number() || value.at(i).as_int() < 1) {
          return spec_fail("wstores entries must be positive integers", error);
        }
        spec.wstores.push_back(value.at(i).as_int());
      }
    } else if (key == "precisions") {
      if (!value.is_array() || value.size() == 0) {
        return spec_fail("precisions must be a non-empty array", error);
      }
      spec.precisions.clear();
      for (std::size_t i = 0; i < value.size(); ++i) {
        if (!value.at(i).is_string()) {
          return spec_fail("precisions entries must be strings", error);
        }
        const auto p = precision_from_name(value.at(i).as_string());
        if (!p) {
          return spec_fail(strfmt("unknown precision '%s'",
                                  value.at(i).as_string().c_str()),
                           error);
        }
        spec.precisions.push_back(*p);
      }
    } else if (key == "supply_v") {
      spec.conditions.supply_v = value.as_number();
      if (spec.conditions.supply_v <= 0) {
        return spec_fail("supply_v must be > 0", error);
      }
    } else if (key == "sparsity") {
      spec.conditions.input_sparsity = value.as_number();
      if (spec.conditions.input_sparsity < 0 ||
          spec.conditions.input_sparsity >= 1) {
        return spec_fail("sparsity must be in [0, 1)", error);
      }
    } else if (key == "activity") {
      spec.conditions.activity = value.as_number();
    } else if (key == "max_l") {
      spec.limits.max_l = value.as_int();
    } else if (key == "max_h") {
      spec.limits.max_h = value.as_int();
    } else if (key == "max_n") {
      spec.limits.max_n = value.as_int();
    } else if (key == "min_n_over_bw") {
      spec.limits.min_n_over_bw = value.as_int();
      if (spec.limits.min_n_over_bw < 1) {
        return spec_fail("min_n_over_bw must be >= 1", error);
      }
    } else if (key == "population") {
      spec.dse.population = static_cast<int>(value.as_int());
      if (spec.dse.population < 4) {
        return spec_fail("population must be >= 4", error);
      }
    } else if (key == "generations") {
      spec.dse.generations = static_cast<int>(value.as_int());
      if (spec.dse.generations < 1) {
        return spec_fail("generations must be >= 1", error);
      }
    } else if (key == "crossover_prob") {
      spec.dse.crossover_prob = value.as_number();
      if (spec.dse.crossover_prob < 0 || spec.dse.crossover_prob > 1) {
        return spec_fail("crossover_prob must be in [0, 1]", error);
      }
    } else if (key == "mutation_prob") {
      spec.dse.mutation_prob = value.as_number();
      if (spec.dse.mutation_prob < 0 || spec.dse.mutation_prob > 1) {
        return spec_fail("mutation_prob must be in [0, 1]", error);
      }
    } else if (key == "seed") {
      spec.dse.seed = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "shard_index") {
      spec.shard.index = static_cast<int>(value.as_int());
      if (spec.shard.index < 0) {
        return spec_fail("shard_index must be >= 0", error);
      }
    } else if (key == "shard_count") {
      spec.shard.count = static_cast<int>(value.as_int());
      if (spec.shard.count < 1) {
        return spec_fail("shard_count must be >= 1", error);
      }
    } else if (key == "threads") {
      spec.dse.threads = static_cast<int>(value.as_int());
      if (spec.dse.threads < 0) return spec_fail("threads must be >= 0", error);
    } else if (key == "heartbeat_every") {
      spec.heartbeat_every = static_cast<int>(value.as_int());
      if (spec.heartbeat_every < 0) {
        return spec_fail("heartbeat_every must be >= 0", error);
      }
    } else if (key == "cost_model") {
      if (!value.is_string()) {
        return spec_fail("cost_model must be \"analytic\" or \"rtl\"", error);
      }
      const auto kind = cost_model_kind_from_name(value.as_string());
      if (!kind) {
        return spec_fail(strfmt("unknown cost model '%s'",
                                value.as_string().c_str()),
                         error);
      }
      spec.cost_model = *kind;
    } else if (key == "checkpoint") {
      if (!value.is_string()) {
        return spec_fail("checkpoint must be a string path", error);
      }
      spec.checkpoint = value.as_string();
    } else if (key == "cache_file") {
      if (!value.is_string()) {
        return spec_fail("cache_file must be a string path", error);
      }
      spec.cache_file = value.as_string();
    } else if (key == "calibration_file") {
      if (!value.is_string()) {
        return spec_fail("calibration_file must be a string path", error);
      }
      spec.calibration_file = value.as_string();
    } else if (key == "layout") {
      if (!value.is_bool()) {
        return spec_fail("layout must be a boolean", error);
      }
      spec.layout = value.as_bool();
    } else {
      return spec_fail(strfmt("unknown sweep spec key '%s'", key.c_str()),
                       error);
    }
  }
  // Cross-field: the index only has meaning relative to the count, so it is
  // validated after both keys have been seen (in either order).
  if (spec.shard.index >= spec.shard.count) {
    return spec_fail("shard_index must be < shard_count", error);
  }
  return spec;
}

Json SweepSpec::to_json() const {
  Json j = result_affecting_json(*this);
  j["threads"] = dse.threads;
  if (heartbeat_every > 0) j["heartbeat_every"] = heartbeat_every;
  if (shard.active()) {
    j["shard_index"] = shard.index;
    j["shard_count"] = shard.count;
  }
  if (!checkpoint.empty()) j["checkpoint"] = checkpoint;
  if (!cache_file.empty()) j["cache_file"] = cache_file;
  if (!calibration_file.empty()) j["calibration_file"] = calibration_file;
  return j;
}

namespace {

// ----------------------------------------------------------- checkpoint

/// Everything that changes cell results: the spec's result-affecting fields
/// plus the full technology (serialized techlib — name, unit scales, and
/// every cell cost), so resuming under a different --tech is caught.
/// Thread count and the checkpoint path itself are deliberately excluded:
/// resuming with different parallelism is legitimate (and yields
/// byte-identical output).
Json config_fingerprint(const SweepSpec& spec, const Technology& tech,
                        const Calibration* cal) {
  Json j = result_affecting_json(spec);
  j["techlib"] = write_techlib(tech);
  // The *artifact identity* (format version + content digest), never the
  // path: renaming the file is legitimate, editing its parameters is not.
  // Uncalibrated sweeps carry no key at all, so pre-calibration checkpoints
  // keep their fingerprint byte-identical — and a calibrated checkpoint can
  // never resume an uncalibrated sweep, or vice versa.
  if (cal != nullptr) j["calibration"] = cal->fingerprint();
  return j;
}

/// Shard checkpoint headers carry the worker's shard identity *next to* the
/// config (never inside it — the fingerprint must be identical across the
/// shard set and the unsharded equivalent, so a merge can verify all files
/// belong to the same sweep).  Unsharded headers carry no shard fields.
Json header_line(const SweepSpec& spec, const Technology& tech,
                 const Calibration* cal) {
  Json j = Json::object();
  j["sega_sweep_checkpoint"] = 1;
  j["config"] = config_fingerprint(spec, tech, cal);
  if (spec.shard.active()) {
    j["shard_index"] = spec.shard.index;
    j["shard_count"] = spec.shard.count;
  }
  return j;
}

/// The shard identity recorded in a checkpoint header: {0, 1} for an
/// unsharded header (no shard fields), nullopt when the fields are present
/// but malformed or inconsistent.
std::optional<ShardSpec> header_shard(const Json& header) {
  ShardSpec shard;
  const bool has_index = header.contains("shard_index");
  const bool has_count = header.contains("shard_count");
  if (!has_index && !has_count) return shard;
  if (!has_index || !has_count || !header.at("shard_index").is_number() ||
      !header.at("shard_count").is_number()) {
    return std::nullopt;
  }
  shard.index = static_cast<int>(header.at("shard_index").as_int());
  shard.count = static_cast<int>(header.at("shard_count").as_int());
  if (shard.count < 1 || shard.index < 0 || shard.index >= shard.count) {
    return std::nullopt;
  }
  return shard;
}

/// The file run_sweep actually reads/appends: the base path itself for an
/// unsharded sweep, the worker's own shard file otherwise.
std::string effective_path(const std::string& base, const ShardSpec& shard) {
  if (base.empty() || !shard.active()) return base;
  return shard_file_path(base, shard.index, shard.count);
}

/// One position of the fixed grid order (Wstore-major, precisions in spec
/// order) — the fold order, the output order, the checkpoint key space, and
/// the stable cell-id space the shard partition is defined over.
struct GridCell {
  std::int64_t wstore;
  Precision precision;
};

std::vector<GridCell> build_grid(const SweepSpec& spec) {
  std::vector<GridCell> grid;
  grid.reserve(spec.wstores.size() * spec.precisions.size());
  for (const std::int64_t wstore : spec.wstores) {
    for (const Precision& precision : spec.precisions) {
      grid.push_back(GridCell{wstore, precision});
    }
  }
  return grid;
}

/// Structural validity of a parsed checkpoint header line.
bool checkpoint_header_valid(const std::optional<Json>& header) {
  return header && header->is_object() &&
         header->contains("sega_sweep_checkpoint") &&
         header->contains("config");
}

/// Verdict on a parsed checkpoint header line against the spec's config
/// fingerprint and an expected shard identity.  Every checkpoint reader —
/// resume, merge, summary — goes through this one check, so the acceptance
/// rules cannot drift between them.
enum class HeaderCheck { kOk, kMalformed, kConfigMismatch, kShardMismatch };

HeaderCheck check_header(const std::optional<Json>& header,
                         const SweepSpec& spec, const Technology& tech,
                         const Calibration* cal, const ShardSpec& expected) {
  if (!checkpoint_header_valid(header)) return HeaderCheck::kMalformed;
  if (!(header->at("config") == config_fingerprint(spec, tech, cal))) {
    return HeaderCheck::kConfigMismatch;
  }
  const auto shard = header_shard(*header);
  if (!shard || shard->index != expected.index ||
      shard->count != expected.count) {
    return HeaderCheck::kShardMismatch;
  }
  return HeaderCheck::kOk;
}

/// One completed cell as a checkpoint line.  The knee metrics are NOT
/// stored: evaluate_macro is a pure function of the design point, so resume
/// re-derives them through the shared cache — bit-identical by construction
/// and immune to serialization rounding.
Json cell_line(const SweepCell& cell, bool empty) {
  Json c = Json::object();
  c["wstore"] = cell.wstore;
  c["precision"] = cell.precision.name;
  c["front_size"] = static_cast<std::int64_t>(empty ? 0 : cell.front_size);
  if (!empty) {
    c["evaluations"] = cell.evaluations;
    Json k = Json::object();
    k["arch"] = arch_kind_name(cell.knee.point.arch);
    k["n"] = cell.knee.point.n;
    k["h"] = cell.knee.point.h;
    k["l"] = cell.knee.point.l;
    k["k"] = cell.knee.point.k;
    k["signed_weights"] = cell.knee.point.signed_weights;
    k["pipelined_tree"] = cell.knee.point.pipelined_tree;
    c["knee"] = std::move(k);
  }
  Json j = Json::object();
  j["cell"] = std::move(c);
  // Line self-checksum: a corrupted-in-place cell line — even one that
  // still parses with plausible values (a mutated knee coordinate) — fails
  // verification and is recomputed instead of silently becoming a result.
  stamp_line_checksum(&j);
  return j;
}

/// Typed lookups that tolerate corrupt lines instead of tripping the Json
/// precondition aborts.
bool get_int(const Json& obj, const char* key, std::int64_t* out) {
  if (!obj.contains(key) || !obj.at(key).is_number()) return false;
  *out = obj.at(key).as_int();
  return true;
}

bool get_bool(const Json& obj, const char* key, bool* out) {
  if (!obj.contains(key) || !obj.at(key).is_bool()) return false;
  *out = obj.at(key).as_bool();
  return true;
}

/// A cell recovered from the checkpoint; empty == true means the cell was
/// completed but produced no front (excluded from the fold, not recomputed).
struct RecoveredCell {
  bool empty = false;
  SweepCell cell;
};

/// Parse one checkpoint cell line into @p out — structural recovery only;
/// the caller re-derives the knee metrics through the cost model (resume)
/// or skips them entirely (--resume-summary).  Returns false (recompute the
/// cell) on any structural or semantic mismatch — a checkpoint may be
/// truncated or hand-edited, and a corrupt line must never become a result.
bool recover_cell(const Json& line, const SweepSpec& spec,
                  RecoveredCell* out) {
  if (!line.is_object() || !line.contains("cell")) return false;
  // Integrity first: the structural/semantic checks below catch damage that
  // changes shape; the checksum catches damage that doesn't (a flipped
  // digit inside a still-valid knee).
  if (!check_line_checksum(line)) return false;
  const Json& c = line.at("cell");
  if (!c.is_object()) return false;
  std::int64_t wstore = 0;
  std::int64_t front_size = 0;
  if (!get_int(c, "wstore", &wstore) ||
      !get_int(c, "front_size", &front_size) || wstore < 1 ||
      front_size < 0) {
    return false;
  }
  if (!c.contains("precision") || !c.at("precision").is_string()) return false;
  const auto precision = precision_from_name(c.at("precision").as_string());
  if (!precision) return false;

  out->cell = SweepCell{};
  out->cell.wstore = wstore;
  out->cell.precision = *precision;
  if (front_size == 0) {
    out->empty = true;
    return true;
  }
  out->empty = false;
  out->cell.front_size = static_cast<std::size_t>(front_size);
  if (!get_int(c, "evaluations", &out->cell.evaluations) ||
      out->cell.evaluations < 1) {
    return false;
  }
  if (!c.contains("knee") || !c.at("knee").is_object()) return false;
  const Json& k = c.at("knee");
  DesignPoint dp;
  dp.precision = *precision;
  dp.arch = arch_for(*precision);
  if (!k.contains("arch") || !k.at("arch").is_string() ||
      k.at("arch").as_string() != arch_kind_name(dp.arch)) {
    return false;
  }
  if (!get_int(k, "n", &dp.n) || !get_int(k, "h", &dp.h) ||
      !get_int(k, "l", &dp.l) || !get_int(k, "k", &dp.k) ||
      !get_bool(k, "signed_weights", &dp.signed_weights) ||
      !get_bool(k, "pipelined_tree", &dp.pipelined_tree)) {
    return false;
  }
  // The recovered knee must be a structurally valid member of this cell's
  // design space (also the precondition of evaluate_macro).
  if (!validate_design(dp, wstore, spec.limits).ok) return false;
  out->cell.knee.point = dp;
  return true;
}

SweepResult checkpoint_fail(const std::string& msg, std::string* error) {
  if (error) {
    *error = msg;
    return {};
  }
  std::fprintf(stderr, "[sega] %s\n", msg.c_str());
  std::abort();
}

/// Stream a checkpoint's non-empty lines.  The first is handed to
/// @p on_header (nullopt when unparseable); its return decides whether the
/// cell lines are read at all.  Every later line goes to @p on_line
/// (nullopt when unparseable).  Both resume and --resume-summary read
/// checkpoints through this one walker, so the line protocol cannot drift
/// between them.  Returns false only when the file cannot be opened;
/// *saw_header reports whether any content line existed (a file killed
/// before the header flush has none).
bool walk_checkpoint(
    const std::string& path, bool* saw_header,
    const std::function<bool(const std::optional<Json>&)>& on_header,
    const std::function<void(const std::optional<Json>&)>& on_line) {
  *saw_header = false;
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const auto parsed = Json::parse(line);
    if (!*saw_header) {
      *saw_header = true;
      if (!on_header(parsed)) return true;
      continue;
    }
    on_line(parsed);
  }
  return true;
}

// ------------------------------------------------- strict number parsing

bool parse_ll(const std::string& s, long long* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_ull(const std::string& s, unsigned long long* out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// First non-empty line of @p path, raw bytes (no trailing newline).
/// Returns false only when the file cannot be opened; a readable file with
/// no content lines leaves *out empty.
bool read_first_content_line(const std::string& path, std::string* out) {
  out->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    *out = line;
    return true;
  }
  return true;
}

// --------------------------------------------------------- index segment
//
// `<checkpoint>.idx` — a compact sidecar so resume seeks instead of
// re-parsing every checkpoint JSONL line (normative spec: docs/FORMATS.md):
//
//   sega_sweep_idx 1 <ckpt_bytes> <header_fnv> <cell_count>
//   ranges <a>-<b>,<c>,...
//   cell <id> <wstore> <precision> <front> <evals> <n> <h> <l> <k> <sw> <pt>
//   ...
//   sum <fnv>
//
// <ckpt_bytes> is the checkpoint size the index reflects — resume
// JSON-parses only the bytes past it (lines appended after the index was
// written).  <header_fnv> is the FNV-1a of the checkpoint's raw header
// line, binding the index to this exact file, not merely this
// configuration.  The trailing sum is an FNV-1a over every preceding byte.
// The index is an *optimization only*: any staleness or integrity signal —
// wrong magic, bad checksum, checkpoint shorter than <ckpt_bytes>, header
// mismatch, a payload that fails grid/shard/design validation — makes the
// reader fall back to the full JSONL parse, which recovers identical state.

std::uint32_t fnv1a(const char* data, std::size_t size) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

/// The "ranges" line for a sorted id list: merged ascending spans
/// ("0-5,7,9-11"), "-" when empty so the line always has two tokens.
std::string render_ranges(const std::vector<std::size_t>& ids) {
  if (ids.empty()) return "ranges -";
  std::string r;
  std::size_t start = ids[0];
  std::size_t prev = ids[0];
  const auto flush = [&]() {
    if (!r.empty()) r += ',';
    r += start == prev ? strfmt("%zu", start) : strfmt("%zu-%zu", start, prev);
  };
  for (std::size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] == prev + 1) {
      prev = ids[i];
    } else {
      flush();
      start = prev = ids[i];
    }
  }
  flush();
  return "ranges " + r;
}

std::string index_render(const std::string& header_raw,
                         std::uint64_t ckpt_bytes,
                         const std::vector<GridCell>& grid,
                         const std::vector<char>& done,
                         const std::vector<RecoveredCell>& slots) {
  std::vector<std::size_t> ids;
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    if (done[gi]) ids.push_back(gi);
  }
  std::string body =
      strfmt("sega_sweep_idx 1 %llu %u %zu\n",
             static_cast<unsigned long long>(ckpt_bytes),
             fnv1a(header_raw.data(), header_raw.size()), ids.size());
  body += render_ranges(ids);
  body += '\n';
  for (const std::size_t gi : ids) {
    const RecoveredCell& rc = slots[gi];
    const DesignPoint& dp = rc.cell.knee.point;
    body += strfmt(
        "cell %zu %lld %s %zu %lld %lld %lld %lld %lld %d %d\n", gi,
        static_cast<long long>(grid[gi].wstore),
        grid[gi].precision.name.c_str(), rc.empty ? 0 : rc.cell.front_size,
        static_cast<long long>(rc.empty ? 0 : rc.cell.evaluations),
        static_cast<long long>(rc.empty ? 0 : dp.n),
        static_cast<long long>(rc.empty ? 0 : dp.h),
        static_cast<long long>(rc.empty ? 0 : dp.l),
        static_cast<long long>(rc.empty ? 0 : dp.k),
        rc.empty ? 0 : (dp.signed_weights ? 1 : 0),
        rc.empty ? 0 : (dp.pipelined_tree ? 1 : 0));
  }
  body += strfmt("sum %u\n", fnv1a(body.data(), body.size()));
  return body;
}

/// Atomic write of an index segment.  Warn-only on failure: the index is a
/// resume accelerator, never data of record — losing it costs a full parse
/// on the next resume, nothing else.
void index_write(const std::string& path, const std::string& body) {
  const std::string tmp =
      strfmt("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "[sega] warning: cannot write index segment '%s'\n",
                   tmp.c_str());
      return;
    }
    f << body;
    f.flush();
    if (!f) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      std::fprintf(stderr, "[sega] warning: write to index segment '%s' "
                           "failed\n",
                   tmp.c_str());
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    std::fprintf(stderr, "[sega] warning: cannot rename index segment '%s' "
                         "into place\n",
                 path.c_str());
  }
}

/// Validate and decode an index segment against the checkpoint it claims to
/// describe.  On success fills @p out with the recovered cells (metrics NOT
/// derived — the caller re-derives them through the cost model, same as the
/// JSONL path) and @p tail_offset with the checkpoint byte offset to resume
/// JSON parsing from.  Any failure returns false — the caller falls back to
/// the full parse, so this function never needs to report *why*.
bool index_load(const std::string& idx_path, const std::string& header_raw,
                std::uint64_t ckpt_size, const SweepSpec& spec,
                const std::vector<GridCell>& grid,
                std::vector<std::pair<std::size_t, RecoveredCell>>* out,
                std::uint64_t* tail_offset) {
  out->clear();
  std::ifstream in(idx_path, std::ios::binary);
  if (!in) return false;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (content.empty() || content.back() != '\n') return false;

  // Integrity first: the last line must be `sum <fnv>` over all bytes
  // before it.  A truncated or bit-flipped index can never pass.
  const std::size_t prev_nl = content.rfind('\n', content.size() - 2);
  const std::size_t body_end = prev_nl == std::string::npos ? 0 : prev_nl + 1;
  const std::string sum_line =
      content.substr(body_end, content.size() - body_end - 1);
  const auto sum_tok = split(sum_line, ' ');
  unsigned long long stored_sum = 0;
  if (sum_tok.size() != 2 || sum_tok[0] != "sum" ||
      !parse_ull(sum_tok[1], &stored_sum) ||
      stored_sum != fnv1a(content.data(), body_end)) {
    return false;
  }

  std::vector<std::string> lines;
  {
    std::size_t pos = 0;
    while (pos < body_end) {
      const std::size_t nl = content.find('\n', pos);
      lines.push_back(content.substr(pos, nl - pos));
      pos = nl + 1;
    }
  }
  if (lines.size() < 2) return false;

  const auto head = split(lines[0], ' ');
  unsigned long long ckpt_bytes = 0;
  unsigned long long header_fnv = 0;
  unsigned long long cell_count = 0;
  if (head.size() != 5 || head[0] != "sega_sweep_idx" || head[1] != "1" ||
      !parse_ull(head[2], &ckpt_bytes) || !parse_ull(head[3], &header_fnv) ||
      !parse_ull(head[4], &cell_count)) {
    return false;
  }
  // Staleness: the index must describe a prefix of THIS checkpoint file.
  // A replaced checkpoint (different header) or one shorter than the index
  // claims (rewritten, truncated) invalidates it.
  if (header_fnv != fnv1a(header_raw.data(), header_raw.size())) return false;
  if (ckpt_bytes > ckpt_size) return false;
  if (cell_count != lines.size() - 2) return false;

  std::vector<std::size_t> ids;
  std::vector<char> seen(grid.size(), 0);
  for (std::size_t li = 2; li < lines.size(); ++li) {
    const auto tok = split(lines[li], ' ');
    if (tok.size() != 12 || tok[0] != "cell") return false;
    unsigned long long id = 0;
    long long wstore = 0;
    long long front = 0;
    long long evals = 0;
    long long n = 0, h = 0, l = 0, k = 0, sw = 0, pt = 0;
    if (!parse_ull(tok[1], &id) || !parse_ll(tok[2], &wstore) ||
        !parse_ll(tok[4], &front) || !parse_ll(tok[5], &evals) ||
        !parse_ll(tok[6], &n) || !parse_ll(tok[7], &h) ||
        !parse_ll(tok[8], &l) || !parse_ll(tok[9], &k) ||
        !parse_ll(tok[10], &sw) || !parse_ll(tok[11], &pt)) {
      return false;
    }
    // Every payload re-earns its place: it must name a cell of this grid,
    // owned by this shard, not yet seen, and (when non-empty) carry a knee
    // that is a valid member of the cell's design space — exactly the
    // acceptance rules of the JSONL recovery path.
    if (id >= grid.size() || seen[id] || !spec.shard.owns(id)) return false;
    if (grid[id].wstore != wstore || grid[id].precision.name != tok[3]) {
      return false;
    }
    seen[id] = 1;
    ids.push_back(id);
    RecoveredCell rc;
    rc.cell.wstore = wstore;
    rc.cell.precision = grid[id].precision;
    if (front == 0) {
      rc.empty = true;
    } else {
      if (front < 0 || evals < 1 || (sw != 0 && sw != 1) ||
          (pt != 0 && pt != 1)) {
        return false;
      }
      rc.empty = false;
      rc.cell.front_size = static_cast<std::size_t>(front);
      rc.cell.evaluations = evals;
      DesignPoint dp;
      dp.precision = grid[id].precision;
      dp.arch = arch_for(dp.precision);
      dp.n = n;
      dp.h = h;
      dp.l = l;
      dp.k = k;
      dp.signed_weights = sw == 1;
      dp.pipelined_tree = pt == 1;
      if (!validate_design(dp, wstore, spec.limits).ok) return false;
      rc.cell.knee.point = dp;
    }
    out->emplace_back(static_cast<std::size_t>(id), std::move(rc));
  }
  // The ranges line must reproduce from the payloads — one more internal
  // consistency check, and it keeps the line honest for human readers.
  std::vector<std::size_t> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  if (lines[1] != render_ranges(sorted)) return false;
  *tail_offset = ckpt_bytes;
  return true;
}

// ------------------------------------------------------- fault injection
//
// SEGA_SWEEP_FAULT=<kill|stall>-after:<k>[:prob=<p>][:seed=<s>][:attempts=<n>]
//
// First-class crash testing for the supervised sweep: after its k-th
// completed cell (this run, recovered cells excluded) the worker persists
// its progress snapshot (heartbeat, memo delta, index) and then either
// _Exit(86)s (kill) or sleeps forever holding the checkpoint mutex (stall —
// wedging every worker thread, the pathology the orchestrator's stall
// timeout exists for).  Whether the fault *arms* at all is a deterministic
// function of (seed, shard index, attempt ordinal): the attempt ordinal
// comes from SEGA_SWEEP_ATTEMPT (set by the orchestrator per retry,
// default 0), and the fault arms iff attempt < attempts and
// hash01(seed, shard, attempt) < prob — so a chaos test can kill exactly
// the first attempt of chosen shards and let every retry run clean.
// A malformed SEGA_SWEEP_FAULT is a hard error: a chaos harness that
// silently ran fault-free would pass while testing nothing.

struct FaultSpec {
  enum class Kind { kNone, kKill, kStall };
  Kind kind = Kind::kNone;
  long long after = 0;      ///< fire after this many completed cells
  double prob = 1.0;        ///< arming probability per (shard, attempt)
  std::uint64_t seed = 0;   ///< arming hash seed
  long long attempts = 1;   ///< arm only attempt ordinals in [0, attempts)
};

bool parse_fault_spec(const std::string& text, FaultSpec* out,
                      std::string* err) {
  const auto fail = [&](const std::string& m) {
    if (err) *err = "SEGA_SWEEP_FAULT: " + m;
    return false;
  };
  const auto parts = split(text, ':');
  if (parts.size() < 2) {
    return fail("expected "
                "'<kill|stall>-after:<k>[:prob=<p>][:seed=<s>]"
                "[:attempts=<n>]'");
  }
  if (parts[0] == "kill-after") {
    out->kind = FaultSpec::Kind::kKill;
  } else if (parts[0] == "stall-after") {
    out->kind = FaultSpec::Kind::kStall;
  } else {
    return fail(strfmt("unknown fault kind '%s' (want kill-after or "
                       "stall-after)",
                       parts[0].c_str()));
  }
  if (!parse_ll(parts[1], &out->after) || out->after < 1) {
    return fail(strfmt("'%s' is not a positive cell count", parts[1].c_str()));
  }
  for (std::size_t i = 2; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    if (eq == std::string::npos) {
      return fail(strfmt("malformed option '%s' (want key=value)",
                         parts[i].c_str()));
    }
    const std::string key = parts[i].substr(0, eq);
    const std::string val = parts[i].substr(eq + 1);
    if (key == "prob") {
      if (!parse_double(val, &out->prob) || out->prob < 0 || out->prob > 1) {
        return fail(strfmt("prob '%s' is not in [0, 1]", val.c_str()));
      }
    } else if (key == "seed") {
      unsigned long long seed = 0;
      if (!parse_ull(val, &seed)) {
        return fail(strfmt("seed '%s' is not a non-negative integer",
                           val.c_str()));
      }
      out->seed = seed;
    } else if (key == "attempts") {
      if (!parse_ll(val, &out->attempts) || out->attempts < 1) {
        return fail(strfmt("attempts '%s' is not a positive integer",
                           val.c_str()));
      }
    } else {
      return fail(strfmt("unknown option '%s'", key.c_str()));
    }
  }
  return true;
}

/// Deterministic hash of (seed, shard, attempt) into [0, 1) — splitmix64
/// finalizer, the same construction the DSE seeding uses.  Fault arming
/// must be a pure function of these three so a chaos run is reproducible.
double fault_hash01(std::uint64_t seed, int shard_index, long long attempt) {
  std::uint64_t x = seed;
  x ^= 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(shard_index) + 1);
  x ^= 0xC2B2AE3D27D4EB4Full * (static_cast<std::uint64_t>(attempt) + 1);
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

/// Load spec.calibration_file up front (every sweep entry point does this
/// before touching any checkpoint or memo).  *out stays null when the spec
/// names no artifact.  A damaged or mismatched artifact — or one combined
/// with the RTL backend — is a hard error: stale or wrong calibration must
/// never silently shape results.
bool load_spec_calibration(const SweepSpec& spec, const Technology& tech,
                           std::shared_ptr<const Calibration>* out,
                           std::string* error) {
  out->reset();
  if (spec.calibration_file.empty()) return true;
  if (spec.cost_model != CostModelKind::kAnalytic) {
    if (error) {
      *error = "calibration_file only applies to the analytic cost model; "
               "the rtl backend is the measurement it was fitted against";
    }
    return false;
  }
  auto cal = load_calibration_for(spec.calibration_file, tech,
                                  spec.conditions, error);
  if (!cal) return false;
  *out = std::make_shared<const Calibration>(std::move(*cal));
  return true;
}

}  // namespace

SweepResult run_sweep(const Compiler& compiler, const SweepSpec& spec,
                      std::string* error) {
  SEGA_EXPECTS(!spec.wstores.empty() && !spec.precisions.empty());
  SEGA_EXPECTS(spec.shard.count >= 1 && spec.shard.index >= 0 &&
               spec.shard.index < spec.shard.count);
  if (error) error->clear();

  // The calibration artifact loads before any checkpoint or memo is touched:
  // its identity is part of both fingerprints.
  std::shared_ptr<const Calibration> calibration;
  {
    std::string cal_error;
    if (!load_spec_calibration(spec, compiler.technology(), &calibration,
                               &cal_error)) {
      return checkpoint_fail(cal_error, error);
    }
  }

  const std::vector<GridCell> grid = build_grid(spec);

  // A sharded worker reads/writes only its own per-worker files.
  const std::string ckpt_path = effective_path(spec.checkpoint, spec.shard);
  const std::string memo_path = effective_path(spec.cache_file, spec.shard);

  if (spec.heartbeat_every > 0 && ckpt_path.empty()) {
    return checkpoint_fail(
        "heartbeat_every requires a checkpoint (the heartbeat and index "
        "files sit next to it)",
        error);
  }

  // Fault injection is parsed up front so a malformed spec fails before any
  // work — a chaos harness must never silently run fault-free.
  FaultSpec fault;
  bool fault_armed = false;
  if (const char* env = std::getenv("SEGA_SWEEP_FAULT"); env && *env) {
    std::string fault_error;
    if (!parse_fault_spec(env, &fault, &fault_error)) {
      return checkpoint_fail(fault_error, error);
    }
    long long attempt = 0;
    if (const char* a = std::getenv("SEGA_SWEEP_ATTEMPT"); a && *a) {
      parse_ll(a, &attempt);
    }
    fault_armed =
        attempt < fault.attempts &&
        fault_hash01(fault.seed, spec.shard.index, attempt) < fault.prob;
  }

  // One memoizing cache across the whole grid: cells at the same Wstore (and
  // neighbouring ones — the genome space overlaps heavily) revisit the same
  // design points, and checkpoint recovery re-derives knee metrics from it.
  // The cache wraps the spec's chosen backend; the memo fingerprint carries
  // the backend identity, so analytic and RTL memos never mix.
  // A host-provided shared cache (SweepSpec::shared_cache — the serve
  // daemon's warm cross-client cache) replaces the run-local one; its owner
  // manages persistence, so the memo load/save below is skipped with it.
  std::unique_ptr<CostCache> owned_cache;
  if (spec.shared_cache == nullptr) {
    owned_cache = std::make_unique<CostCache>(
        make_cost_model(spec.cost_model, compiler.technology(),
                        spec.conditions, calibration, spec.layout));
  }
  CostCache& cache = spec.shared_cache ? *spec.shared_cache : *owned_cache;

  // --- persistent memo load ---
  // Sharded workers seed from the unified base memo (a previously merged
  // run; marked imported so the shard save below writes only this worker's
  // delta, not a full base copy per shard) and then their own shard (a
  // resumed worker; part of the delta).  Unsharded runs load the base only.
  // Merge-on-load keeps whichever entry arrived first — for a matching
  // fingerprint they are identical anyway.
  if (!spec.cache_file.empty() && spec.shared_cache == nullptr) {
    std::vector<std::string> memo_sources = {spec.cache_file};
    if (memo_path != spec.cache_file) memo_sources.push_back(memo_path);
    for (const std::string& path : memo_sources) {
      std::error_code ec;
      if (!std::filesystem::exists(path, ec)) continue;
      std::string cache_error;
      const bool is_base = spec.shard.active() && path == spec.cache_file;
      if (!cache.load(path, &cache_error, /*mark_imported=*/is_base)) {
        return checkpoint_fail(cache_error, error);
      }
    }
  }

  // --- checkpoint load ---
  using CellKey = std::pair<std::int64_t, std::string>;
  std::map<CellKey, RecoveredCell> recovered;
  std::unique_ptr<std::ofstream> ckpt;
  std::mutex ckpt_mu;
  std::string ckpt_header_raw;  // raw header line, for index staleness binding
  if (!ckpt_path.empty()) {
    bool have_header = false;
    std::error_code ec;
    if (std::filesystem::exists(ckpt_path, ec)) {
      // The header must match this sweep's configuration exactly — and, for
      // a sharded worker, this worker's exact shard identity; a checkpoint
      // from a different sweep or a different slice of the grid must never
      // be mixed in.  Cell lines tolerate truncation/corruption (a killed
      // writer may leave a partial tail) by simply recomputing those cells.
      // The header is read and checked up front (one line — cheap); what
      // the index fast path below skips is the *cell line* parsing.
      if (!read_first_content_line(ckpt_path, &ckpt_header_raw)) {
        return checkpoint_fail(
            strfmt("cannot read checkpoint '%s'", ckpt_path.c_str()), error);
      }
      HeaderCheck verdict = HeaderCheck::kOk;
      if (!ckpt_header_raw.empty()) {
        have_header = true;
        verdict = check_header(Json::parse(ckpt_header_raw), spec,
                               compiler.technology(), calibration.get(),
                               spec.shard);
      }
      if (have_header && verdict == HeaderCheck::kOk) {
        const auto consume = [&](const std::optional<Json>& line) {
          if (!line) return;
          RecoveredCell rc;
          if (!recover_cell(*line, spec, &rc)) return;
          // Metrics are never stored in the checkpoint: re-derive them
          // through the pure cost model so recovery is bit-exact and
          // immune to serialization rounding.
          if (!rc.empty) {
            rc.cell.knee.metrics = cache.evaluate(rc.cell.knee.point);
          }
          recovered[CellKey{rc.cell.wstore, rc.cell.precision.name}] =
              std::move(rc);
        };
        // Index fast path: a valid index segment replaces the JSONL parse
        // of every cell line it covers; only the tail appended after the
        // index was written is parsed.  Both paths recover identical state
        // — the index is dropped on any staleness signal, never trusted
        // over the checkpoint.
        std::error_code size_ec;
        const auto ckpt_size = std::filesystem::file_size(ckpt_path, size_ec);
        std::vector<std::pair<std::size_t, RecoveredCell>> indexed;
        std::uint64_t tail_offset = 0;
        if (!size_ec &&
            index_load(index_file_path(ckpt_path), ckpt_header_raw, ckpt_size,
                       spec, grid, &indexed, &tail_offset)) {
          for (auto& [gi, rc] : indexed) {
            (void)gi;
            if (!rc.empty) {
              rc.cell.knee.metrics = cache.evaluate(rc.cell.knee.point);
            }
            recovered[CellKey{rc.cell.wstore, rc.cell.precision.name}] =
                std::move(rc);
          }
          std::ifstream tail(ckpt_path, std::ios::binary);
          tail.seekg(static_cast<std::streamoff>(tail_offset));
          std::string line;
          while (std::getline(tail, line)) {
            if (trim(line).empty()) continue;
            consume(Json::parse(line));
          }
        } else {
          bool walked_header = false;
          walk_checkpoint(ckpt_path, &walked_header,
                          [](const std::optional<Json>&) { return true; },
                          consume);
        }
      }
      if (verdict == HeaderCheck::kMalformed) {
        return checkpoint_fail(
            strfmt("checkpoint '%s' has a missing or malformed header",
                   ckpt_path.c_str()),
            error);
      }
      if (verdict == HeaderCheck::kConfigMismatch) {
        return checkpoint_fail(
            strfmt("checkpoint '%s' was written for a different sweep "
                   "configuration; delete it or fix the spec",
                   ckpt_path.c_str()),
            error);
      }
      if (verdict == HeaderCheck::kShardMismatch) {
        return checkpoint_fail(
            strfmt("checkpoint '%s' was written for a different shard of "
                   "this sweep (expected shard %d/%d); delete it or fix "
                   "--shard",
                   ckpt_path.c_str(), spec.shard.index, spec.shard.count),
            error);
      }
      // No content lines at all (a run killed before the header flush, or a
      // pre-created empty file): treat as fresh and write the header below.
    }
    // A killed writer can leave a partial final line without a newline;
    // appending straight after it would merge the next cell into garbage.
    bool needs_leading_newline = false;
    if (have_header) {
      std::ifstream tail(ckpt_path, std::ios::binary);
      tail.seekg(0, std::ios::end);
      if (tail.tellg() > 0) {
        tail.seekg(-1, std::ios::end);
        needs_leading_newline = tail.get() != '\n';
      }
    }
    ckpt = std::make_unique<std::ofstream>(ckpt_path, std::ios::app);
    if (!*ckpt) {
      return checkpoint_fail(
          strfmt("cannot open checkpoint '%s' for append", ckpt_path.c_str()),
          error);
    }
    if (needs_leading_newline) *ckpt << '\n';
    if (!have_header) {
      ckpt_header_raw =
          header_line(spec, compiler.technology(), calibration.get()).dump();
      *ckpt << ckpt_header_raw << '\n';
      ckpt->flush();
    }
  }

  // --- schedule the remaining cells onto the pool ---
  // `mine` is this worker's slice of the grid in ascending cell-id order
  // (the whole grid when unsharded); only those cells are recovered,
  // computed, and folded here.
  std::vector<std::size_t> mine;
  std::vector<std::size_t> todo;  // owned cells not covered by recovery
  std::vector<RecoveredCell> slots(grid.size());
  std::vector<char> done(grid.size(), 0);  // recovered or completed this run
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    if (!spec.shard.owns(gi)) continue;
    mine.push_back(gi);
    const auto it = recovered.find(
        CellKey{grid[gi].wstore, grid[gi].precision.name});
    if (it != recovered.end()) {
      slots[gi] = it->second;
      done[gi] = 1;
    } else {
      todo.push_back(gi);
    }
  }

  // --- liveness / crash-durability plumbing ---
  // persist_memo is the one memo writer (heartbeat snapshots, the fault
  // hook, and the end-of-run save all go through it).  Non-fatal: the grid
  // is the primary product; a failed memo write only costs re-evaluation.
  const auto persist_memo = [&]() {
    if (memo_path.empty() || spec.shared_cache != nullptr) return;
    std::string cache_error;
    const bool saved = spec.shard.active()
                           ? cache.save_delta(memo_path, &cache_error)
                           : cache.save(memo_path, &cache_error);
    if (!saved) {
      std::fprintf(stderr, "[sega] warning: %s (sweep results unaffected)\n",
                   cache_error.c_str());
    }
  };
  std::ofstream hb;
  std::size_t done_owned = 0;
  for (const std::size_t gi : mine) done_owned += done[gi] ? 1 : 0;
  if (spec.heartbeat_every > 0) {
    hb.open(heartbeat_file_path(ckpt_path), std::ios::app);
    if (!hb) {
      return checkpoint_fail(
          strfmt("cannot open heartbeat file '%s' for append",
                 heartbeat_file_path(ckpt_path).c_str()),
          error);
    }
  }
  // One progress snapshot: heartbeat line (supervisor liveness), memo delta
  // (evaluations survive a kill), index segment (resume seeks, not parses).
  // Caller holds ckpt_mu when worker threads are live.
  const auto snapshot = [&]() {
    if (hb.is_open()) {
      Json line = Json::object();
      line["done"] = static_cast<std::int64_t>(done_owned);
      line["pid"] = static_cast<std::int64_t>(::getpid());
      line["total"] = static_cast<std::int64_t>(mine.size());
      hb << line.dump() << '\n';
      hb.flush();
    }
    persist_memo();
    if (ckpt) {
      // Every checkpoint line is flushed as it is appended, so the file
      // size is exactly the prefix this index covers.
      ckpt->flush();
      std::error_code size_ec;
      const auto bytes = std::filesystem::file_size(ckpt_path, size_ec);
      if (!size_ec) {
        index_write(index_file_path(ckpt_path),
                    index_render(ckpt_header_raw, bytes, grid, done, slots));
      }
    }
  };
  if (spec.heartbeat_every > 0) {
    // Starting snapshot: the supervisor sees a live worker before the first
    // (possibly long) cell completes, and a resumed worker re-covers its
    // recovered cells in the index immediately.
    snapshot();
  }
  std::atomic<long long> completions{0};
  // Fires the armed fault once the counter reaches the threshold — after
  // persisting a snapshot, so a killed worker's retry resumes from its
  // checkpoint/memo instead of recomputing.  Called with ckpt_mu held when
  // a checkpoint is active; the stall deliberately never releases it,
  // wedging every worker thread behind the checkpoint append.
  const auto maybe_fire_fault = [&](long long completed) {
    if (!fault_armed || completed != fault.after) return;
    snapshot();
    if (fault.kind == FaultSpec::Kind::kKill) {
      std::fprintf(stderr,
                   "[sega] fault injection: kill-after:%lld firing (shard "
                   "%d/%d)\n",
                   fault.after, spec.shard.index, spec.shard.count);
      std::_Exit(86);
    }
    std::fprintf(stderr,
                 "[sega] fault injection: stall-after:%lld firing (shard "
                 "%d/%d)\n",
                 fault.after, spec.shard.index, spec.shard.count);
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  };

  // Cost-guided work-stealing: the pending cells are seeded into the pool's
  // per-thread deques in descending predicted-cost order — Wstore x input
  // width x weight width, the dominant factors of a cell's design-space
  // size and per-point cost — so the FP32/128K corner starts immediately
  // and threads that drain their own deque steal the cheap tail instead of
  // idling behind a long cell.  Scheduling order (and the steal schedule)
  // is a latency lever only: every result lands in its fixed grid slot and
  // the fold below always walks grid order, so outputs are byte-identical
  // under any schedule, thread count, or shard split.
  std::stable_sort(todo.begin(), todo.end(),
                   [&grid](std::size_t a, std::size_t b) {
                     const auto predicted = [&grid](std::size_t gi) {
                       return grid[gi].wstore *
                              grid[gi].precision.input_bits() *
                              grid[gi].precision.weight_bits();
                     };
                     return predicted(a) > predicted(b);
                   });

  std::unique_ptr<ThreadPool> owned;
  if (spec.dse.threads > 0) {
    owned = std::make_unique<ThreadPool>(spec.dse.threads);
  }
  ThreadPool& pool = owned ? *owned : ThreadPool::global();
  pool.parallel_for_stealing(todo, [&](std::size_t gi) {
    CompilerSpec cs;
    cs.wstore = grid[gi].wstore;
    cs.precision = grid[gi].precision;
    cs.conditions = spec.conditions;
    cs.dse = spec.dse;
    cs.dse.threads = 0;  // inherit this task's thread (no nested pools)
    cs.limits = spec.limits;
    cs.cost_model = spec.cost_model;
    cs.layout = spec.layout;  // informational: evaluation goes through cache
    cs.distill = DistillPolicy::kKnee;
    cs.generate_rtl = false;
    cs.generate_layout = false;
    const CompilerResult run = compiler.run(cs, &cache);

    RecoveredCell& slot = slots[gi];
    slot.cell.wstore = grid[gi].wstore;
    slot.cell.precision = grid[gi].precision;
    if (run.pareto_front.empty()) {
      slot.empty = true;
    } else {
      slot.empty = false;
      slot.cell.front_size = run.pareto_front.size();
      slot.cell.evaluations = run.dse_stats.evaluations;
      slot.cell.knee = run.selected.front().design;
    }
    if (ckpt) {
      // Streamed so a kill at any point loses at most the in-flight line;
      // completion order varies with scheduling, but resume keys cells by
      // (wstore, precision), not by file position.  The progress hook fires
      // under the same lock, so stream order matches append order.
      const Json record = cell_line(slot.cell, slot.empty);
      const std::string line = record.dump();
      std::lock_guard<std::mutex> lock(ckpt_mu);
      *ckpt << line << '\n';
      ckpt->flush();
      if (spec.progress) spec.progress(record);
      done[gi] = 1;
      ++done_owned;
      const long long completed = ++completions;
      if (spec.heartbeat_every > 0 &&
          completed % spec.heartbeat_every == 0) {
        snapshot();
      }
      maybe_fire_fault(completed);
    } else {
      // No checkpoint, no snapshot to persist — but the fault must still
      // fire on schedule (only one thread ever sees the threshold value).
      if (spec.progress) {
        const Json record = cell_line(slot.cell, slot.empty);
        std::lock_guard<std::mutex> lock(ckpt_mu);
        spec.progress(record);
      }
      maybe_fire_fault(++completions);
    }
  });

  // --- persistent memo save ---
  // A sharded worker saves only its own shard file — workers never contend
  // on one memo; merge_sweep_shards fans the shards into the base memo.
  // Non-fatal: the grid is already computed, and discarding a finished
  // sweep's results over an auxiliary-output I/O error (full disk,
  // read-only cache path) would destroy the primary product.  The next run
  // simply re-pays the evaluations.  (Loading a bad memo stays a hard
  // error — that would corrupt results; failing to write one cannot.)
  //
  // The completion snapshot also leaves a final heartbeat line and an index
  // segment covering every completed cell — the next resume of this
  // checkpoint parses zero JSONL cell lines.
  if (ckpt) {
    std::lock_guard<std::mutex> lock(ckpt_mu);
    snapshot();
  } else {
    persist_memo();
  }

  // --- fold in fixed grid order ---
  // Always grid order (Wstore-major, precisions in spec order), never
  // completion order: the schedule above is free to finish cells in any
  // order, but the output walks the slots in their fixed positions.
  SweepResult result;
  result.cache_hits = cache.hits();
  result.cache_misses = cache.misses();
  for (const std::size_t gi : mine) {
    if (slots[gi].empty) continue;
    result.cells.push_back(std::move(slots[gi].cell));
  }
  return result;
}

SweepResult merge_sweep_shards(const Compiler& compiler, const SweepSpec& spec,
                               int shard_count, std::string* error) {
  SEGA_EXPECTS(!spec.wstores.empty() && !spec.precisions.empty());
  SEGA_EXPECTS(shard_count >= 1);
  if (error) error->clear();
  if (spec.checkpoint.empty()) {
    return checkpoint_fail(
        "sweep-merge needs a checkpoint base path (spec key 'checkpoint' or "
        "--checkpoint)",
        error);
  }
  std::shared_ptr<const Calibration> calibration;
  {
    std::string cal_error;
    if (!load_spec_calibration(spec, compiler.technology(), &calibration,
                               &cal_error)) {
      return checkpoint_fail(cal_error, error);
    }
  }

  // The same fixed grid (and cell-id space) the workers partitioned.
  const std::vector<GridCell> grid = build_grid(spec);
  using CellKey = std::pair<std::int64_t, std::string>;
  std::map<CellKey, std::size_t> cell_id;
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    cell_id[CellKey{grid[gi].wstore, grid[gi].precision.name}] = gi;
  }

  // --- read every shard checkpoint ---
  // Each shard file must carry this spec's config fingerprint AND identify
  // itself as exactly shard s of shard_count — a file from a different
  // sweep, or from a differently sized shard set, must never be merged.
  std::vector<RecoveredCell> slots(grid.size());
  std::vector<char> covered(grid.size(), 0);
  std::vector<int> missing;
  std::size_t stale_lines = 0;
  std::size_t corrupt_lines = 0;
  for (int s = 0; s < shard_count; ++s) {
    const ShardSpec shard{s, shard_count};
    const std::string path = effective_path(spec.checkpoint, shard);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      missing.push_back(s);
      continue;
    }
    bool have_header = false;
    HeaderCheck verdict = HeaderCheck::kOk;
    const bool readable = walk_checkpoint(
        path, &have_header,
        [&](const std::optional<Json>& header) {
          verdict = check_header(header, spec, compiler.technology(),
                                 calibration.get(), shard);
          return verdict == HeaderCheck::kOk;
        },
        [&](const std::optional<Json>& line) {
          if (!line) {
            ++corrupt_lines;
            return;
          }
          RecoveredCell rc;
          if (!recover_cell(*line, spec, &rc)) {
            ++corrupt_lines;
            return;
          }
          const auto it = cell_id.find(
              CellKey{rc.cell.wstore, rc.cell.precision.name});
          // Cells outside the grid — or outside this shard's slice — are
          // stale lines from some older file; they never become results.
          if (it == cell_id.end() || !shard.owns(it->second)) {
            ++stale_lines;
            return;
          }
          if (covered[it->second]) return;  // duplicate line, first wins
          covered[it->second] = 1;
          slots[it->second] = std::move(rc);
        });
    if (!readable) {
      return checkpoint_fail(
          strfmt("cannot read shard checkpoint '%s'", path.c_str()), error);
    }
    if (verdict == HeaderCheck::kMalformed || !have_header) {
      return checkpoint_fail(
          strfmt("shard checkpoint '%s' has a missing or malformed header",
                 path.c_str()),
          error);
    }
    if (verdict == HeaderCheck::kConfigMismatch) {
      return checkpoint_fail(
          strfmt("shard checkpoint '%s' was written for a different sweep "
                 "configuration; it cannot be merged under this spec",
                 path.c_str()),
          error);
    }
    if (verdict == HeaderCheck::kShardMismatch) {
      return checkpoint_fail(
          strfmt("shard checkpoint '%s' does not identify itself as shard "
                 "%d/%d — shard-set mismatch; merge with the shard count "
                 "the workers actually ran with",
                 path.c_str(), s, shard_count),
          error);
    }
  }

  // --- completeness ---
  // A missing shard or an uncovered cell makes the merge impossible; the
  // error carries the --resume-summary coverage report so the operator can
  // see exactly which slice to (re)run.
  std::size_t done = 0;
  for (std::size_t gi = 0; gi < grid.size(); ++gi) done += covered[gi] ? 1 : 0;
  if (!missing.empty() || done != grid.size()) {
    CheckpointSummary summary;
    summary.config_match = true;
    summary.cells_total = grid.size();
    summary.cells_done = done;
    summary.stale_lines = stale_lines;
    summary.corrupt_lines = corrupt_lines;
    std::map<std::string, std::size_t> done_by_precision;
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
      if (covered[gi]) ++done_by_precision[grid[gi].precision.name];
    }
    for (const Precision& precision : spec.precisions) {
      CheckpointPrecisionCoverage cov;
      cov.precision = precision.name;
      cov.done = done_by_precision[precision.name];
      cov.total = spec.wstores.size();
      summary.per_precision.push_back(std::move(cov));
    }
    std::string msg = strfmt("sweep-merge: shard set under '%s' is incomplete",
                             spec.checkpoint.c_str());
    if (!missing.empty()) {
      msg += "; missing shard file(s):";
      for (const int s : missing) {
        // The same naming the existence check used: the bare base path for
        // a 1-way "set", the shard file otherwise.
        msg += strfmt(
            " %s",
            effective_path(spec.checkpoint, ShardSpec{s, shard_count}).c_str());
      }
    }
    msg += "\n" + summary.render(spec.checkpoint);
    return checkpoint_fail(msg, error);
  }

  // --- memo fan-in + bit-exact metric re-derivation ---
  // Knee metrics are never stored in checkpoints; they are re-derived here
  // through the pure cost model (the spec's backend — the fingerprint check
  // above guarantees the shards were computed under it), so the merged
  // result is exactly what a single-process run would have produced.  The
  // workers' memo shards make this free when a cache file is in play.
  CostCache cache(make_cost_model(spec.cost_model, compiler.technology(),
                                  spec.conditions, calibration, spec.layout));
  if (!spec.cache_file.empty()) {
    std::error_code ec;
    if (std::filesystem::exists(spec.cache_file, ec)) {
      std::string cache_error;
      if (!cache.load(spec.cache_file, &cache_error)) {
        return checkpoint_fail(cache_error, error);
      }
    }
    std::string cache_error;
    if (!cache.load_shards(spec.cache_file, shard_count, &cache_error)) {
      return checkpoint_fail(cache_error, error);
    }
  }
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    if (slots[gi].empty) continue;
    slots[gi].cell.knee.metrics = cache.evaluate(slots[gi].cell.knee.point);
  }

  // --- unified checkpoint rewrite (atomic, grid order, no shard identity) —
  // a later unsharded `sweep` resumes from it as if one process had run the
  // whole grid.  Shard files are left in place: the merge is idempotent and
  // re-runnable.
  SweepSpec unsharded = spec;
  unsharded.shard = ShardSpec{};
  std::string text =
      header_line(unsharded, compiler.technology(), calibration.get()).dump();
  text += '\n';
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    text += cell_line(slots[gi].cell, slots[gi].empty).dump();
    text += '\n';
  }
  const std::string tmp = strfmt("%s.tmp.%d", spec.checkpoint.c_str(),
                                 static_cast<int>(::getpid()));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      return checkpoint_fail(
          strfmt("cannot write unified checkpoint '%s'", tmp.c_str()), error);
    }
    f << text;
    f.flush();
    if (!f) {
      f.close();
      std::error_code cleanup_ec;
      std::filesystem::remove(tmp, cleanup_ec);
      return checkpoint_fail(
          strfmt("write to unified checkpoint '%s' failed", tmp.c_str()),
          error);
    }
  }
  std::error_code rename_ec;
  std::filesystem::rename(tmp, spec.checkpoint, rename_ec);
  if (rename_ec) {
    std::filesystem::remove(tmp, rename_ec);
    return checkpoint_fail(
        strfmt("cannot rename unified checkpoint '%s' into place",
               spec.checkpoint.c_str()),
        error);
  }
  // Unified index segment: the merged checkpoint covers the whole grid, so
  // a later unsharded resume recovers every cell from the index without
  // parsing a single JSONL cell line.
  {
    const std::vector<char> all_done(grid.size(), 1);
    const std::string header_raw = text.substr(0, text.find('\n'));
    index_write(index_file_path(spec.checkpoint),
                index_render(header_raw, text.size(), grid, all_done, slots));
  }

  // --- unified memo save (warn-only, like run_sweep's save) ---
  if (!spec.cache_file.empty()) {
    std::string cache_error;
    if (!cache.save(spec.cache_file, &cache_error)) {
      std::fprintf(stderr, "[sega] warning: %s (merge results unaffected)\n",
                   cache_error.c_str());
    }
  }

  // --- fold in fixed grid order ---
  SweepResult result;
  result.cache_hits = cache.hits();
  result.cache_misses = cache.misses();
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    if (slots[gi].empty) continue;
    result.cells.push_back(std::move(slots[gi].cell));
  }
  return result;
}

std::string CheckpointSummary::render(const std::string& path) const {
  const double pct = cells_total == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(cells_done) /
                               static_cast<double>(cells_total);
  std::string out = strfmt("checkpoint %s\n", path.c_str());
  out += strfmt("  config match : %s\n", config_match ? "yes" : "NO");
  out += strfmt("  coverage     : %zu/%zu cells complete (%.1f%%)\n",
                cells_done, cells_total, pct);
  for (const auto& cov : per_precision) {
    out += strfmt("    %-8s %zu/%zu\n", cov.precision.c_str(), cov.done,
                  cov.total);
  }
  if (stale_lines > 0) {
    out += strfmt("  stale lines  : %zu (cells outside this grid)\n",
                  stale_lines);
  }
  if (corrupt_lines > 0) {
    out += strfmt("  corrupt lines: %zu (will be recomputed on resume)\n",
                  corrupt_lines);
  }
  if (!config_match) {
    out += "  NOTE: resuming with this spec will fail — the checkpoint was "
           "written for a different sweep configuration\n";
  }
  return out;
}

std::optional<CheckpointSummary> summarize_checkpoint(const Compiler& compiler,
                                                      const SweepSpec& spec,
                                                      std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::optional<CheckpointSummary> {
    if (error) *error = msg;
    return std::nullopt;
  };
  if (error) error->clear();
  if (spec.checkpoint.empty()) {
    return fail("no checkpoint path in the sweep spec");
  }
  std::shared_ptr<const Calibration> calibration;
  {
    std::string cal_error;
    if (!load_spec_calibration(spec, compiler.technology(), &calibration,
                               &cal_error)) {
      return fail(cal_error);
    }
  }
  // For a sharded spec the summary covers this worker's slice of the grid
  // (its own shard file, its own cells) — the merge-time coverage of the
  // whole set is merge_sweep_shards' partial-merge report.
  const std::string path = effective_path(spec.checkpoint, spec.shard);

  CheckpointSummary summary;
  std::map<std::string, std::size_t> done_by_precision;
  std::map<std::string, std::size_t> total_by_precision;
  std::set<std::pair<std::int64_t, std::string>> grid_keys, seen;
  const std::vector<GridCell> grid = build_grid(spec);
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    if (!spec.shard.owns(gi)) continue;
    grid_keys.emplace(grid[gi].wstore, grid[gi].precision.name);
    ++total_by_precision[grid[gi].precision.name];
    ++summary.cells_total;
  }

  bool have_header = false;
  bool malformed_header = false;
  const bool readable = walk_checkpoint(
      path, &have_header,
      [&](const std::optional<Json>& header) {
        const HeaderCheck verdict =
            check_header(header, spec, compiler.technology(),
                         calibration.get(), spec.shard);
        if (verdict == HeaderCheck::kMalformed) {
          malformed_header = true;
          return false;
        }
        // A mismatch is reported, not an error — the point of the summary
        // is to tell the user what the file holds.  "Match" means resumable
        // by this spec: same config fingerprint AND same shard identity.
        summary.config_match = verdict == HeaderCheck::kOk;
        return true;
      },
      [&](const std::optional<Json>& line) {
        if (!line) {
          ++summary.corrupt_lines;
          return;
        }
        RecoveredCell rc;
        if (!recover_cell(*line, spec, &rc)) {
          ++summary.corrupt_lines;
          return;
        }
        const std::pair<std::int64_t, std::string> key{
            rc.cell.wstore, rc.cell.precision.name};
        if (grid_keys.count(key) == 0) {
          ++summary.stale_lines;
          return;
        }
        if (!seen.insert(key).second) return;  // duplicate line, count once
        ++summary.cells_done;
        ++done_by_precision[rc.cell.precision.name];
      });
  if (!readable) {
    return fail(strfmt("cannot read checkpoint '%s'", path.c_str()));
  }
  if (!have_header || malformed_header) {
    return fail(strfmt("checkpoint '%s' has a missing or malformed header",
                       path.c_str()));
  }
  for (const Precision& precision : spec.precisions) {
    CheckpointPrecisionCoverage cov;
    cov.precision = precision.name;
    cov.done = done_by_precision[precision.name];
    cov.total = total_by_precision[precision.name];
    summary.per_precision.push_back(std::move(cov));
  }
  return summary;
}

Json SweepResult::to_json() const {
  Json j = Json::array();
  for (const auto& cell : cells) {
    Json c = Json::object();
    c["wstore"] = cell.wstore;
    c["precision"] = cell.precision.name;
    c["front_size"] = static_cast<std::int64_t>(cell.front_size);
    c["evaluations"] = cell.evaluations;
    c["knee_design"] = cell.knee.point.to_string();
    c["area_mm2"] = cell.knee.metrics.area_mm2;
    c["delay_ns"] = cell.knee.metrics.delay_ns;
    c["energy_per_mvm_nj"] = cell.knee.metrics.energy_per_mvm_nj;
    c["throughput_tops"] = cell.knee.metrics.throughput_tops;
    c["tops_per_w"] = cell.knee.metrics.tops_per_w;
    c["tops_per_mm2"] = cell.knee.metrics.tops_per_mm2;
    j.push_back(std::move(c));
  }
  return j;
}

std::string SweepResult::to_csv() const {
  std::string out =
      "wstore,precision,front_size,evaluations,n,h,l,k,area_mm2,delay_ns,"
      "energy_per_mvm_nj,throughput_tops,tops_per_w,tops_per_mm2\n";
  for (const auto& cell : cells) {
    out += strfmt("%lld,%s,%zu,%lld,%lld,%lld,%lld,%lld,%.6g,%.6g,%.6g,%.6g,"
                  "%.6g,%.6g\n",
                  static_cast<long long>(cell.wstore),
                  cell.precision.name.c_str(), cell.front_size,
                  static_cast<long long>(cell.evaluations),
                  static_cast<long long>(cell.knee.point.n),
                  static_cast<long long>(cell.knee.point.h),
                  static_cast<long long>(cell.knee.point.l),
                  static_cast<long long>(cell.knee.point.k),
                  cell.knee.metrics.area_mm2, cell.knee.metrics.delay_ns,
                  cell.knee.metrics.energy_per_mvm_nj,
                  cell.knee.metrics.throughput_tops,
                  cell.knee.metrics.tops_per_w,
                  cell.knee.metrics.tops_per_mm2);
  }
  return out;
}

}  // namespace sega
