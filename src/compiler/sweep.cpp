#include "compiler/sweep.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "cost/cost_cache.h"
#include "tech/techlib_parser.h"
#include "util/assert.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace sega {

namespace {

// ------------------------------------------------------------- spec JSON

std::optional<SweepSpec> spec_fail(const std::string& msg,
                                   std::string* error) {
  if (error) *error = msg;
  return std::nullopt;
}

/// The result-affecting fields in JSON form — the shared core of to_json()
/// and the checkpoint config fingerprint, so the two can never drift.
/// Excludes threads, the checkpoint path and the cache-file path (none of
/// them changes results).
Json result_affecting_json(const SweepSpec& spec) {
  Json j = Json::object();
  Json ws = Json::array();
  for (const std::int64_t w : spec.wstores) ws.push_back(w);
  j["wstores"] = std::move(ws);
  Json ps = Json::array();
  for (const Precision& p : spec.precisions) ps.push_back(p.name);
  j["precisions"] = std::move(ps);
  j["supply_v"] = spec.conditions.supply_v;
  j["sparsity"] = spec.conditions.input_sparsity;
  j["activity"] = spec.conditions.activity;
  j["max_l"] = spec.limits.max_l;
  j["max_h"] = spec.limits.max_h;
  j["max_n"] = spec.limits.max_n;
  j["min_n_over_bw"] = spec.limits.min_n_over_bw;
  j["population"] = spec.dse.population;
  j["generations"] = spec.dse.generations;
  j["crossover_prob"] = spec.dse.crossover_prob;
  j["mutation_prob"] = spec.dse.mutation_prob;
  j["seed"] = static_cast<std::int64_t>(spec.dse.seed);
  return j;
}

}  // namespace

std::optional<SweepSpec> SweepSpec::from_json(const Json& json,
                                              std::string* error) {
  if (!json.is_object()) return spec_fail("sweep spec must be a JSON object",
                                          error);
  SweepSpec spec;
  for (const auto& [key, value] : json.items()) {
    // Scalar keys are type-checked before the typed accessors: a wrong type
    // must be a parse error, never a precondition abort.
    const bool is_scalar_key = key != "wstores" && key != "precisions" &&
                               key != "checkpoint" && key != "cache_file";
    if (is_scalar_key && !value.is_number()) {
      return spec_fail(strfmt("spec key '%s' must be a number", key.c_str()),
                       error);
    }
    if (key == "wstores") {
      if (!value.is_array() || value.size() == 0) {
        return spec_fail("wstores must be a non-empty array", error);
      }
      spec.wstores.clear();
      for (std::size_t i = 0; i < value.size(); ++i) {
        if (!value.at(i).is_number() || value.at(i).as_int() < 1) {
          return spec_fail("wstores entries must be positive integers", error);
        }
        spec.wstores.push_back(value.at(i).as_int());
      }
    } else if (key == "precisions") {
      if (!value.is_array() || value.size() == 0) {
        return spec_fail("precisions must be a non-empty array", error);
      }
      spec.precisions.clear();
      for (std::size_t i = 0; i < value.size(); ++i) {
        if (!value.at(i).is_string()) {
          return spec_fail("precisions entries must be strings", error);
        }
        const auto p = precision_from_name(value.at(i).as_string());
        if (!p) {
          return spec_fail(strfmt("unknown precision '%s'",
                                  value.at(i).as_string().c_str()),
                           error);
        }
        spec.precisions.push_back(*p);
      }
    } else if (key == "supply_v") {
      spec.conditions.supply_v = value.as_number();
      if (spec.conditions.supply_v <= 0) {
        return spec_fail("supply_v must be > 0", error);
      }
    } else if (key == "sparsity") {
      spec.conditions.input_sparsity = value.as_number();
      if (spec.conditions.input_sparsity < 0 ||
          spec.conditions.input_sparsity >= 1) {
        return spec_fail("sparsity must be in [0, 1)", error);
      }
    } else if (key == "activity") {
      spec.conditions.activity = value.as_number();
    } else if (key == "max_l") {
      spec.limits.max_l = value.as_int();
    } else if (key == "max_h") {
      spec.limits.max_h = value.as_int();
    } else if (key == "max_n") {
      spec.limits.max_n = value.as_int();
    } else if (key == "min_n_over_bw") {
      spec.limits.min_n_over_bw = value.as_int();
      if (spec.limits.min_n_over_bw < 1) {
        return spec_fail("min_n_over_bw must be >= 1", error);
      }
    } else if (key == "population") {
      spec.dse.population = static_cast<int>(value.as_int());
      if (spec.dse.population < 4) {
        return spec_fail("population must be >= 4", error);
      }
    } else if (key == "generations") {
      spec.dse.generations = static_cast<int>(value.as_int());
      if (spec.dse.generations < 1) {
        return spec_fail("generations must be >= 1", error);
      }
    } else if (key == "crossover_prob") {
      spec.dse.crossover_prob = value.as_number();
      if (spec.dse.crossover_prob < 0 || spec.dse.crossover_prob > 1) {
        return spec_fail("crossover_prob must be in [0, 1]", error);
      }
    } else if (key == "mutation_prob") {
      spec.dse.mutation_prob = value.as_number();
      if (spec.dse.mutation_prob < 0 || spec.dse.mutation_prob > 1) {
        return spec_fail("mutation_prob must be in [0, 1]", error);
      }
    } else if (key == "seed") {
      spec.dse.seed = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "threads") {
      spec.dse.threads = static_cast<int>(value.as_int());
      if (spec.dse.threads < 0) return spec_fail("threads must be >= 0", error);
    } else if (key == "checkpoint") {
      if (!value.is_string()) {
        return spec_fail("checkpoint must be a string path", error);
      }
      spec.checkpoint = value.as_string();
    } else if (key == "cache_file") {
      if (!value.is_string()) {
        return spec_fail("cache_file must be a string path", error);
      }
      spec.cache_file = value.as_string();
    } else {
      return spec_fail(strfmt("unknown sweep spec key '%s'", key.c_str()),
                       error);
    }
  }
  return spec;
}

Json SweepSpec::to_json() const {
  Json j = result_affecting_json(*this);
  j["threads"] = dse.threads;
  if (!checkpoint.empty()) j["checkpoint"] = checkpoint;
  if (!cache_file.empty()) j["cache_file"] = cache_file;
  return j;
}

namespace {

// ----------------------------------------------------------- checkpoint

/// Everything that changes cell results: the spec's result-affecting fields
/// plus the full technology (serialized techlib — name, unit scales, and
/// every cell cost), so resuming under a different --tech is caught.
/// Thread count and the checkpoint path itself are deliberately excluded:
/// resuming with different parallelism is legitimate (and yields
/// byte-identical output).
Json config_fingerprint(const SweepSpec& spec, const Technology& tech) {
  Json j = result_affecting_json(spec);
  j["techlib"] = write_techlib(tech);
  return j;
}

Json header_line(const SweepSpec& spec, const Technology& tech) {
  Json j = Json::object();
  j["sega_sweep_checkpoint"] = 1;
  j["config"] = config_fingerprint(spec, tech);
  return j;
}

/// One completed cell as a checkpoint line.  The knee metrics are NOT
/// stored: evaluate_macro is a pure function of the design point, so resume
/// re-derives them through the shared cache — bit-identical by construction
/// and immune to serialization rounding.
Json cell_line(const SweepCell& cell, bool empty) {
  Json c = Json::object();
  c["wstore"] = cell.wstore;
  c["precision"] = cell.precision.name;
  c["front_size"] = static_cast<std::int64_t>(empty ? 0 : cell.front_size);
  if (!empty) {
    c["evaluations"] = cell.evaluations;
    Json k = Json::object();
    k["arch"] = arch_kind_name(cell.knee.point.arch);
    k["n"] = cell.knee.point.n;
    k["h"] = cell.knee.point.h;
    k["l"] = cell.knee.point.l;
    k["k"] = cell.knee.point.k;
    k["signed_weights"] = cell.knee.point.signed_weights;
    k["pipelined_tree"] = cell.knee.point.pipelined_tree;
    c["knee"] = std::move(k);
  }
  Json j = Json::object();
  j["cell"] = std::move(c);
  return j;
}

/// Typed lookups that tolerate corrupt lines instead of tripping the Json
/// precondition aborts.
bool get_int(const Json& obj, const char* key, std::int64_t* out) {
  if (!obj.contains(key) || !obj.at(key).is_number()) return false;
  *out = obj.at(key).as_int();
  return true;
}

bool get_bool(const Json& obj, const char* key, bool* out) {
  if (!obj.contains(key) || !obj.at(key).is_bool()) return false;
  *out = obj.at(key).as_bool();
  return true;
}

/// A cell recovered from the checkpoint; empty == true means the cell was
/// completed but produced no front (excluded from the fold, not recomputed).
struct RecoveredCell {
  bool empty = false;
  SweepCell cell;
};

/// Parse one checkpoint cell line into @p out — structural recovery only;
/// the caller re-derives the knee metrics through the cost model (resume)
/// or skips them entirely (--resume-summary).  Returns false (recompute the
/// cell) on any structural or semantic mismatch — a checkpoint may be
/// truncated or hand-edited, and a corrupt line must never become a result.
bool recover_cell(const Json& line, const SweepSpec& spec,
                  RecoveredCell* out) {
  if (!line.is_object() || !line.contains("cell")) return false;
  const Json& c = line.at("cell");
  if (!c.is_object()) return false;
  std::int64_t wstore = 0;
  std::int64_t front_size = 0;
  if (!get_int(c, "wstore", &wstore) ||
      !get_int(c, "front_size", &front_size) || wstore < 1 ||
      front_size < 0) {
    return false;
  }
  if (!c.contains("precision") || !c.at("precision").is_string()) return false;
  const auto precision = precision_from_name(c.at("precision").as_string());
  if (!precision) return false;

  out->cell = SweepCell{};
  out->cell.wstore = wstore;
  out->cell.precision = *precision;
  if (front_size == 0) {
    out->empty = true;
    return true;
  }
  out->empty = false;
  out->cell.front_size = static_cast<std::size_t>(front_size);
  if (!get_int(c, "evaluations", &out->cell.evaluations) ||
      out->cell.evaluations < 1) {
    return false;
  }
  if (!c.contains("knee") || !c.at("knee").is_object()) return false;
  const Json& k = c.at("knee");
  DesignPoint dp;
  dp.precision = *precision;
  dp.arch = arch_for(*precision);
  if (!k.contains("arch") || !k.at("arch").is_string() ||
      k.at("arch").as_string() != arch_kind_name(dp.arch)) {
    return false;
  }
  if (!get_int(k, "n", &dp.n) || !get_int(k, "h", &dp.h) ||
      !get_int(k, "l", &dp.l) || !get_int(k, "k", &dp.k) ||
      !get_bool(k, "signed_weights", &dp.signed_weights) ||
      !get_bool(k, "pipelined_tree", &dp.pipelined_tree)) {
    return false;
  }
  // The recovered knee must be a structurally valid member of this cell's
  // design space (also the precondition of evaluate_macro).
  if (!validate_design(dp, wstore, spec.limits).ok) return false;
  out->cell.knee.point = dp;
  return true;
}

SweepResult checkpoint_fail(const std::string& msg, std::string* error) {
  if (error) {
    *error = msg;
    return {};
  }
  std::fprintf(stderr, "[sega] %s\n", msg.c_str());
  std::abort();
}

/// Structural validity of a parsed checkpoint header line.
bool checkpoint_header_valid(const std::optional<Json>& header) {
  return header && header->is_object() &&
         header->contains("sega_sweep_checkpoint") &&
         header->contains("config");
}

/// Stream a checkpoint's non-empty lines.  The first is handed to
/// @p on_header (nullopt when unparseable); its return decides whether the
/// cell lines are read at all.  Every later line goes to @p on_line
/// (nullopt when unparseable).  Both resume and --resume-summary read
/// checkpoints through this one walker, so the line protocol cannot drift
/// between them.  Returns false only when the file cannot be opened;
/// *saw_header reports whether any content line existed (a file killed
/// before the header flush has none).
bool walk_checkpoint(
    const std::string& path, bool* saw_header,
    const std::function<bool(const std::optional<Json>&)>& on_header,
    const std::function<void(const std::optional<Json>&)>& on_line) {
  *saw_header = false;
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const auto parsed = Json::parse(line);
    if (!*saw_header) {
      *saw_header = true;
      if (!on_header(parsed)) return true;
      continue;
    }
    on_line(parsed);
  }
  return true;
}

}  // namespace

SweepResult run_sweep(const Compiler& compiler, const SweepSpec& spec,
                      std::string* error) {
  SEGA_EXPECTS(!spec.wstores.empty() && !spec.precisions.empty());
  if (error) error->clear();

  // Fixed grid order (Wstore-major) — the fold order, the output order, and
  // the key space of the checkpoint.
  struct GridCell {
    std::int64_t wstore;
    Precision precision;
  };
  std::vector<GridCell> grid;
  grid.reserve(spec.wstores.size() * spec.precisions.size());
  for (const std::int64_t wstore : spec.wstores) {
    for (const Precision& precision : spec.precisions) {
      grid.push_back(GridCell{wstore, precision});
    }
  }

  // One memoizing cache across the whole grid: cells at the same Wstore (and
  // neighbouring ones — the genome space overlaps heavily) revisit the same
  // design points, and checkpoint recovery re-derives knee metrics from it.
  CostCache cache(compiler.technology(), spec.conditions);

  // --- persistent memo load ---
  if (!spec.cache_file.empty()) {
    std::error_code ec;
    if (std::filesystem::exists(spec.cache_file, ec)) {
      std::string cache_error;
      if (!cache.load(spec.cache_file, &cache_error)) {
        return checkpoint_fail(cache_error, error);
      }
    }
  }

  // --- checkpoint load ---
  using CellKey = std::pair<std::int64_t, std::string>;
  std::map<CellKey, RecoveredCell> recovered;
  std::unique_ptr<std::ofstream> ckpt;
  std::mutex ckpt_mu;
  if (!spec.checkpoint.empty()) {
    bool have_header = false;
    std::error_code ec;
    if (std::filesystem::exists(spec.checkpoint, ec)) {
      // The header must match this sweep's configuration exactly; a
      // checkpoint from a different sweep must never be mixed in.  Cell
      // lines tolerate truncation/corruption (a killed writer may leave a
      // partial tail) by simply recomputing those cells.
      bool malformed_header = false;
      bool config_mismatch = false;
      const bool readable = walk_checkpoint(
          spec.checkpoint, &have_header,
          [&](const std::optional<Json>& header) {
            if (!checkpoint_header_valid(header)) {
              malformed_header = true;
              return false;
            }
            if (!(header->at("config") ==
                  config_fingerprint(spec, compiler.technology()))) {
              config_mismatch = true;
              return false;
            }
            return true;
          },
          [&](const std::optional<Json>& line) {
            if (!line) return;
            RecoveredCell rc;
            if (!recover_cell(*line, spec, &rc)) return;
            // Metrics are never stored in the checkpoint: re-derive them
            // through the pure cost model so recovery is bit-exact and
            // immune to serialization rounding.
            if (!rc.empty) {
              rc.cell.knee.metrics = cache.evaluate(rc.cell.knee.point);
            }
            recovered[CellKey{rc.cell.wstore, rc.cell.precision.name}] =
                std::move(rc);
          });
      if (!readable) {
        return checkpoint_fail(
            strfmt("cannot read checkpoint '%s'", spec.checkpoint.c_str()),
            error);
      }
      if (malformed_header) {
        return checkpoint_fail(
            strfmt("checkpoint '%s' has a missing or malformed header",
                   spec.checkpoint.c_str()),
            error);
      }
      if (config_mismatch) {
        return checkpoint_fail(
            strfmt("checkpoint '%s' was written for a different sweep "
                   "configuration; delete it or fix the spec",
                   spec.checkpoint.c_str()),
            error);
      }
      // No content lines at all (a run killed before the header flush, or a
      // pre-created empty file): treat as fresh and write the header below.
    }
    // A killed writer can leave a partial final line without a newline;
    // appending straight after it would merge the next cell into garbage.
    bool needs_leading_newline = false;
    if (have_header) {
      std::ifstream tail(spec.checkpoint, std::ios::binary);
      tail.seekg(0, std::ios::end);
      if (tail.tellg() > 0) {
        tail.seekg(-1, std::ios::end);
        needs_leading_newline = tail.get() != '\n';
      }
    }
    ckpt = std::make_unique<std::ofstream>(spec.checkpoint, std::ios::app);
    if (!*ckpt) {
      return checkpoint_fail(
          strfmt("cannot open checkpoint '%s' for append",
                 spec.checkpoint.c_str()),
          error);
    }
    if (needs_leading_newline) *ckpt << '\n';
    if (!have_header) {
      *ckpt << header_line(spec, compiler.technology()).dump() << '\n';
      ckpt->flush();
    }
  }

  // --- schedule the remaining cells onto the pool ---
  std::vector<std::size_t> todo;  // grid positions not covered by recovery
  std::vector<RecoveredCell> slots(grid.size());
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    const auto it = recovered.find(
        CellKey{grid[gi].wstore, grid[gi].precision.name});
    if (it != recovered.end()) {
      slots[gi] = it->second;
    } else {
      todo.push_back(gi);
    }
  }

  // Cost-guided scheduling: submit the predictably expensive cells first so
  // the FP32/128K corner doesn't start last and stretch the tail of the
  // schedule.  The heuristic is Wstore x input width x weight width (the
  // dominant factors of a cell's design-space size and per-point cost).
  // Only the submission order changes — every result lands in its fixed
  // grid slot and the fold below stays in grid order, so outputs are
  // byte-identical to an unordered schedule.
  std::stable_sort(todo.begin(), todo.end(),
                   [&grid](std::size_t a, std::size_t b) {
                     const auto predicted = [&grid](std::size_t gi) {
                       return grid[gi].wstore *
                              grid[gi].precision.input_bits() *
                              grid[gi].precision.weight_bits();
                     };
                     return predicted(a) > predicted(b);
                   });

  std::unique_ptr<ThreadPool> owned;
  if (spec.dse.threads > 0) {
    owned = std::make_unique<ThreadPool>(spec.dse.threads);
  }
  ThreadPool& pool = owned ? *owned : ThreadPool::global();
  pool.parallel_for(todo.size(), [&](std::size_t t) {
    const std::size_t gi = todo[t];
    CompilerSpec cs;
    cs.wstore = grid[gi].wstore;
    cs.precision = grid[gi].precision;
    cs.conditions = spec.conditions;
    cs.dse = spec.dse;
    cs.dse.threads = 0;  // inherit this task's thread (no nested pools)
    cs.limits = spec.limits;
    cs.distill = DistillPolicy::kKnee;
    cs.generate_rtl = false;
    cs.generate_layout = false;
    const CompilerResult run = compiler.run(cs, &cache);

    RecoveredCell& slot = slots[gi];
    slot.cell.wstore = grid[gi].wstore;
    slot.cell.precision = grid[gi].precision;
    if (run.pareto_front.empty()) {
      slot.empty = true;
    } else {
      slot.empty = false;
      slot.cell.front_size = run.pareto_front.size();
      slot.cell.evaluations = run.dse_stats.evaluations;
      slot.cell.knee = run.selected.front().design;
    }
    if (ckpt) {
      // Streamed so a kill at any point loses at most the in-flight line;
      // completion order varies with scheduling, but resume keys cells by
      // (wstore, precision), not by file position.
      const std::string line = cell_line(slot.cell, slot.empty).dump();
      std::lock_guard<std::mutex> lock(ckpt_mu);
      *ckpt << line << '\n';
      ckpt->flush();
    }
  });

  // --- persistent memo save ---
  // Non-fatal: the grid is already computed, and discarding a finished
  // sweep's results over an auxiliary-output I/O error (full disk,
  // read-only cache path) would destroy the primary product.  The next run
  // simply re-pays the evaluations.  (Loading a bad memo stays a hard
  // error — that would corrupt results; failing to write one cannot.)
  if (!spec.cache_file.empty()) {
    std::string cache_error;
    if (!cache.save(spec.cache_file, &cache_error)) {
      std::fprintf(stderr, "[sega] warning: %s (sweep results unaffected)\n",
                   cache_error.c_str());
    }
  }

  // --- fold in fixed grid order ---
  SweepResult result;
  result.cache_hits = cache.hits();
  result.cache_misses = cache.misses();
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    if (slots[gi].empty) continue;
    result.cells.push_back(std::move(slots[gi].cell));
  }
  return result;
}

std::string CheckpointSummary::render(const std::string& path) const {
  const double pct = cells_total == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(cells_done) /
                               static_cast<double>(cells_total);
  std::string out = strfmt("checkpoint %s\n", path.c_str());
  out += strfmt("  config match : %s\n", config_match ? "yes" : "NO");
  out += strfmt("  coverage     : %zu/%zu cells complete (%.1f%%)\n",
                cells_done, cells_total, pct);
  for (const auto& cov : per_precision) {
    out += strfmt("    %-8s %zu/%zu\n", cov.precision.c_str(), cov.done,
                  cov.total);
  }
  if (stale_lines > 0) {
    out += strfmt("  stale lines  : %zu (cells outside this grid)\n",
                  stale_lines);
  }
  if (corrupt_lines > 0) {
    out += strfmt("  corrupt lines: %zu (will be recomputed on resume)\n",
                  corrupt_lines);
  }
  if (!config_match) {
    out += "  NOTE: resuming with this spec will fail — the checkpoint was "
           "written for a different sweep configuration\n";
  }
  return out;
}

std::optional<CheckpointSummary> summarize_checkpoint(const Compiler& compiler,
                                                      const SweepSpec& spec,
                                                      std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::optional<CheckpointSummary> {
    if (error) *error = msg;
    return std::nullopt;
  };
  if (error) error->clear();
  if (spec.checkpoint.empty()) {
    return fail("no checkpoint path in the sweep spec");
  }

  CheckpointSummary summary;
  summary.cells_total = spec.wstores.size() * spec.precisions.size();
  std::map<std::string, std::size_t> done_by_precision;
  std::set<std::pair<std::int64_t, std::string>> grid_keys, seen;
  for (const std::int64_t wstore : spec.wstores) {
    for (const Precision& precision : spec.precisions) {
      grid_keys.emplace(wstore, precision.name);
    }
  }

  bool have_header = false;
  bool malformed_header = false;
  const bool readable = walk_checkpoint(
      spec.checkpoint, &have_header,
      [&](const std::optional<Json>& header) {
        if (!checkpoint_header_valid(header)) {
          malformed_header = true;
          return false;
        }
        // A mismatch is reported, not an error — the point of the summary
        // is to tell the user what the file holds.
        summary.config_match =
            header->at("config") ==
            config_fingerprint(spec, compiler.technology());
        return true;
      },
      [&](const std::optional<Json>& line) {
        if (!line) {
          ++summary.corrupt_lines;
          return;
        }
        RecoveredCell rc;
        if (!recover_cell(*line, spec, &rc)) {
          ++summary.corrupt_lines;
          return;
        }
        const std::pair<std::int64_t, std::string> key{
            rc.cell.wstore, rc.cell.precision.name};
        if (grid_keys.count(key) == 0) {
          ++summary.stale_lines;
          return;
        }
        if (!seen.insert(key).second) return;  // duplicate line, count once
        ++summary.cells_done;
        ++done_by_precision[rc.cell.precision.name];
      });
  if (!readable) {
    return fail(strfmt("cannot read checkpoint '%s'", spec.checkpoint.c_str()));
  }
  if (!have_header || malformed_header) {
    return fail(strfmt("checkpoint '%s' has a missing or malformed header",
                       spec.checkpoint.c_str()));
  }
  for (const Precision& precision : spec.precisions) {
    CheckpointPrecisionCoverage cov;
    cov.precision = precision.name;
    cov.done = done_by_precision[precision.name];
    cov.total = spec.wstores.size();
    summary.per_precision.push_back(std::move(cov));
  }
  return summary;
}

Json SweepResult::to_json() const {
  Json j = Json::array();
  for (const auto& cell : cells) {
    Json c = Json::object();
    c["wstore"] = cell.wstore;
    c["precision"] = cell.precision.name;
    c["front_size"] = static_cast<std::int64_t>(cell.front_size);
    c["evaluations"] = cell.evaluations;
    c["knee_design"] = cell.knee.point.to_string();
    c["area_mm2"] = cell.knee.metrics.area_mm2;
    c["delay_ns"] = cell.knee.metrics.delay_ns;
    c["energy_per_mvm_nj"] = cell.knee.metrics.energy_per_mvm_nj;
    c["throughput_tops"] = cell.knee.metrics.throughput_tops;
    c["tops_per_w"] = cell.knee.metrics.tops_per_w;
    c["tops_per_mm2"] = cell.knee.metrics.tops_per_mm2;
    j.push_back(std::move(c));
  }
  return j;
}

std::string SweepResult::to_csv() const {
  std::string out =
      "wstore,precision,front_size,evaluations,n,h,l,k,area_mm2,delay_ns,"
      "energy_per_mvm_nj,throughput_tops,tops_per_w,tops_per_mm2\n";
  for (const auto& cell : cells) {
    out += strfmt("%lld,%s,%zu,%lld,%lld,%lld,%lld,%lld,%.6g,%.6g,%.6g,%.6g,"
                  "%.6g,%.6g\n",
                  static_cast<long long>(cell.wstore),
                  cell.precision.name.c_str(), cell.front_size,
                  static_cast<long long>(cell.evaluations),
                  static_cast<long long>(cell.knee.point.n),
                  static_cast<long long>(cell.knee.point.h),
                  static_cast<long long>(cell.knee.point.l),
                  static_cast<long long>(cell.knee.point.k),
                  cell.knee.metrics.area_mm2, cell.knee.metrics.delay_ns,
                  cell.knee.metrics.energy_per_mvm_nj,
                  cell.knee.metrics.throughput_tops,
                  cell.knee.metrics.tops_per_w,
                  cell.knee.metrics.tops_per_mm2);
  }
  return out;
}

}  // namespace sega
