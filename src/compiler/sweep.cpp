#include "compiler/sweep.h"

#include "util/assert.h"
#include "util/strings.h"

namespace sega {

SweepResult run_sweep(const Compiler& compiler, const SweepSpec& spec) {
  SEGA_EXPECTS(!spec.wstores.empty() && !spec.precisions.empty());
  SweepResult result;
  for (const std::int64_t wstore : spec.wstores) {
    for (const Precision& precision : spec.precisions) {
      CompilerSpec cs;
      cs.wstore = wstore;
      cs.precision = precision;
      cs.conditions = spec.conditions;
      cs.dse = spec.dse;
      cs.limits = spec.limits;
      cs.distill = DistillPolicy::kKnee;
      cs.generate_rtl = false;
      cs.generate_layout = false;
      const CompilerResult run = compiler.run(cs);
      if (run.pareto_front.empty()) continue;
      SweepCell cell;
      cell.wstore = wstore;
      cell.precision = precision;
      cell.front_size = run.pareto_front.size();
      cell.evaluations = run.dse_stats.evaluations;
      cell.knee = run.selected.front().design;
      result.cells.push_back(std::move(cell));
    }
  }
  return result;
}

Json SweepResult::to_json() const {
  Json j = Json::array();
  for (const auto& cell : cells) {
    Json c = Json::object();
    c["wstore"] = cell.wstore;
    c["precision"] = cell.precision.name;
    c["front_size"] = static_cast<std::int64_t>(cell.front_size);
    c["evaluations"] = cell.evaluations;
    c["knee_design"] = cell.knee.point.to_string();
    c["area_mm2"] = cell.knee.metrics.area_mm2;
    c["delay_ns"] = cell.knee.metrics.delay_ns;
    c["energy_per_mvm_nj"] = cell.knee.metrics.energy_per_mvm_nj;
    c["throughput_tops"] = cell.knee.metrics.throughput_tops;
    c["tops_per_w"] = cell.knee.metrics.tops_per_w;
    c["tops_per_mm2"] = cell.knee.metrics.tops_per_mm2;
    j.push_back(std::move(c));
  }
  return j;
}

std::string SweepResult::to_csv() const {
  std::string out =
      "wstore,precision,front_size,evaluations,n,h,l,k,area_mm2,delay_ns,"
      "energy_per_mvm_nj,throughput_tops,tops_per_w,tops_per_mm2\n";
  for (const auto& cell : cells) {
    out += strfmt("%lld,%s,%zu,%lld,%lld,%lld,%lld,%lld,%.6g,%.6g,%.6g,%.6g,"
                  "%.6g,%.6g\n",
                  static_cast<long long>(cell.wstore),
                  cell.precision.name.c_str(), cell.front_size,
                  static_cast<long long>(cell.evaluations),
                  static_cast<long long>(cell.knee.point.n),
                  static_cast<long long>(cell.knee.point.h),
                  static_cast<long long>(cell.knee.point.l),
                  static_cast<long long>(cell.knee.point.k),
                  cell.knee.metrics.area_mm2, cell.knee.metrics.delay_ns,
                  cell.knee.metrics.energy_per_mvm_nj,
                  cell.knee.metrics.throughput_tops,
                  cell.knee.metrics.tops_per_w,
                  cell.knee.metrics.tops_per_mm2);
  }
  return out;
}

}  // namespace sega
