#include "compiler/spec.h"

#include "util/assert.h"
#include "util/strings.h"

namespace sega {

const char* distill_policy_name(DistillPolicy policy) {
  switch (policy) {
    case DistillPolicy::kKnee: return "knee";
    case DistillPolicy::kMinArea: return "min_area";
    case DistillPolicy::kMinDelay: return "min_delay";
    case DistillPolicy::kMinEnergy: return "min_energy";
    case DistillPolicy::kMaxThroughput: return "max_throughput";
    case DistillPolicy::kAll: return "all";
  }
  SEGA_ASSERT(false);
  return "";
}

std::optional<DistillPolicy> distill_policy_from_name(
    const std::string& name) {
  const std::string n = to_lower(trim(name));
  for (const DistillPolicy p :
       {DistillPolicy::kKnee, DistillPolicy::kMinArea, DistillPolicy::kMinDelay,
        DistillPolicy::kMinEnergy, DistillPolicy::kMaxThroughput,
        DistillPolicy::kAll}) {
    if (n == distill_policy_name(p)) return p;
  }
  return std::nullopt;
}

std::optional<CompilerSpec> CompilerSpec::from_json(const Json& json,
                                                    std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<CompilerSpec> {
    if (error) *error = msg;
    return std::nullopt;
  };
  if (!json.is_object()) return fail("spec must be a JSON object");

  CompilerSpec spec;
  for (const auto& [key, value] : json.items()) {
    if (key == "wstore") {
      spec.wstore = value.as_int();
      if (spec.wstore < 1) return fail("wstore must be positive");
    } else if (key == "precision") {
      const auto p = precision_from_name(value.as_string());
      if (!p) return fail(strfmt("unknown precision '%s'",
                                 value.as_string().c_str()));
      spec.precision = *p;
    } else if (key == "supply_v") {
      spec.conditions.supply_v = value.as_number();
      if (spec.conditions.supply_v <= 0) return fail("supply_v must be > 0");
    } else if (key == "sparsity") {
      spec.conditions.input_sparsity = value.as_number();
      if (spec.conditions.input_sparsity < 0 ||
          spec.conditions.input_sparsity >= 1) {
        return fail("sparsity must be in [0, 1)");
      }
    } else if (key == "activity") {
      spec.conditions.activity = value.as_number();
    } else if (key == "max_l") {
      spec.limits.max_l = value.as_int();
    } else if (key == "max_h") {
      spec.limits.max_h = value.as_int();
    } else if (key == "max_n") {
      spec.limits.max_n = value.as_int();
    } else if (key == "population") {
      spec.dse.population = static_cast<int>(value.as_int());
    } else if (key == "generations") {
      spec.dse.generations = static_cast<int>(value.as_int());
    } else if (key == "seed") {
      spec.dse.seed = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "threads") {
      spec.dse.threads = static_cast<int>(value.as_int());
      if (spec.dse.threads < 0) return fail("threads must be >= 0");
    } else if (key == "distill") {
      const auto p = distill_policy_from_name(value.as_string());
      if (!p) return fail(strfmt("unknown distill policy '%s'",
                                 value.as_string().c_str()));
      spec.distill = *p;
    } else if (key == "max_selected") {
      spec.max_selected = static_cast<int>(value.as_int());
      if (spec.max_selected < 1) return fail("max_selected must be >= 1");
    } else if (key == "generate_rtl") {
      spec.generate_rtl = value.as_bool();
    } else if (key == "generate_layout") {
      spec.generate_layout = value.as_bool();
    } else if (key == "generate_def") {
      spec.generate_def = value.as_bool();
    } else if (key == "cost_model") {
      if (!value.is_string()) {
        return fail("cost_model must be \"analytic\" or \"rtl\"");
      }
      const auto kind = cost_model_kind_from_name(value.as_string());
      if (!kind) {
        return fail(strfmt("unknown cost model '%s'",
                           value.as_string().c_str()));
      }
      spec.cost_model = *kind;
    } else if (key == "cache_file") {
      if (!value.is_string()) return fail("cache_file must be a string path");
      spec.cache_file = value.as_string();
    } else if (key == "calibration_file") {
      if (!value.is_string()) {
        return fail("calibration_file must be a string path");
      }
      spec.calibration_file = value.as_string();
    } else if (key == "layout") {
      spec.layout = value.as_bool();
    } else {
      return fail(strfmt("unknown spec key '%s'", key.c_str()));
    }
  }
  return spec;
}

Json CompilerSpec::to_json() const {
  Json j = Json::object();
  j["wstore"] = wstore;
  j["precision"] = precision.name;
  j["supply_v"] = conditions.supply_v;
  j["sparsity"] = conditions.input_sparsity;
  j["activity"] = conditions.activity;
  j["max_l"] = limits.max_l;
  j["max_h"] = limits.max_h;
  j["max_n"] = limits.max_n;
  j["population"] = dse.population;
  j["generations"] = dse.generations;
  j["seed"] = static_cast<std::int64_t>(dse.seed);
  j["threads"] = dse.threads;
  j["distill"] = distill_policy_name(distill);
  j["cost_model"] = cost_model_kind_name(cost_model);
  j["max_selected"] = max_selected;
  j["generate_rtl"] = generate_rtl;
  j["generate_layout"] = generate_layout;
  j["generate_def"] = generate_def;
  if (!cache_file.empty()) j["cache_file"] = cache_file;
  if (!calibration_file.empty()) j["calibration_file"] = calibration_file;
  // Only-when-enabled, so pre-layout spec round-trips stay byte-identical.
  if (layout) j["layout"] = true;
  return j;
}

}  // namespace sega
