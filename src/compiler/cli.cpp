#include "compiler/cli.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "compiler/compiler.h"
#include "compiler/sweep.h"
#include "tech/techlib_parser.h"
#include "util/strings.h"

namespace sega {

namespace {

constexpr const char* kUsage =
    "usage: sega_dcim <command> [options]\n"
    "\n"
    "commands:\n"
    "  compile --spec <spec.json> --out <dir> [--tech <file.techlib>]\n"
    "          [--cache-file <path>]\n"
    "  explore --wstore <n> --precision <name> [--sparsity <f>]\n"
    "          [--supply <v>] [--seed <n>] [--population <n>]\n"
    "          [--generations <n>] [--threads <n>] [--tech <file.techlib>]\n"
    "          [--cache-file <path>]\n"
    "  sweep   [--spec <sweep.json>] [--out <dir>] [--checkpoint <path>]\n"
    "          [--cache-file <path>] [--resume-summary]\n"
    "          [--wstores <n,n,...>] [--precisions <name,name,...>]\n"
    "          [--sparsity <f>] [--supply <v>] [--seed <n>]\n"
    "          [--population <n>] [--generations <n>] [--threads <n>]\n"
    "          [--tech <file.techlib>]\n"
    "  precisions\n"
    "  techlib\n";

/// Parse --key value pairs; flags named in @p boolean_flags take no value
/// (their presence stores "1").  Returns false on malformed input.
bool parse_flags(const std::vector<std::string>& args, std::size_t start,
                 const std::vector<std::string>& boolean_flags,
                 std::map<std::string, std::string>* flags,
                 std::ostream& err) {
  for (std::size_t i = start; i < args.size();) {
    if (!starts_with(args[i], "--")) {
      err << "malformed option '" << args[i] << "'\n";
      return false;
    }
    const std::string name = args[i].substr(2);
    const bool is_boolean =
        std::find(boolean_flags.begin(), boolean_flags.end(), name) !=
        boolean_flags.end();
    if (is_boolean) {
      (*flags)[name] = "1";
      i += 1;
      continue;
    }
    if (i + 1 >= args.size()) {
      err << "malformed option '" << args[i] << "'\n";
      return false;
    }
    (*flags)[name] = args[i + 1];
    i += 2;
  }
  return true;
}

/// Reject unknown flags (typos must not silently change a run).
bool check_known(const std::map<std::string, std::string>& flags,
                 const std::vector<std::string>& known, std::ostream& err) {
  for (const auto& [key, value] : flags) {
    bool ok = false;
    for (const auto& k : known) {
      if (key == k) ok = true;
    }
    if (!ok) {
      err << "unknown option '--" << key << "'\n";
      return false;
    }
  }
  return true;
}

std::optional<Technology> load_technology(
    const std::map<std::string, std::string>& flags, std::ostream& err) {
  const auto it = flags.find("tech");
  if (it == flags.end()) return Technology::tsmc28();
  std::ifstream in(it->second);
  if (!in) {
    err << "cannot open techlib '" << it->second << "'\n";
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string perr;
  auto tech = parse_techlib(buf.str(), &perr);
  if (!tech) err << perr << "\n";
  return tech;
}

int cmd_compile(const std::map<std::string, std::string>& flags,
                std::ostream& out, std::ostream& err) {
  if (!flags.count("spec") || !flags.count("out")) {
    err << "compile requires --spec and --out\n";
    return 2;
  }
  std::ifstream in(flags.at("spec"));
  if (!in) {
    err << "cannot open spec '" << flags.at("spec") << "'\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string jerr;
  const auto json = Json::parse(buf.str(), &jerr);
  if (!json) {
    err << jerr << "\n";
    return 2;
  }
  std::string serr;
  const auto spec = CompilerSpec::from_json(*json, &serr);
  if (!spec) {
    err << serr << "\n";
    return 2;
  }
  const auto tech = load_technology(flags, err);
  if (!tech) return 2;

  CompilerSpec run_spec = *spec;
  if (flags.count("cache-file")) run_spec.cache_file = flags.at("cache-file");

  const Compiler compiler(*tech);
  std::string run_err;
  const CompilerResult result = compiler.run(run_spec, nullptr, &run_err);
  if (!run_err.empty()) {
    err << run_err << "\n";
    return 2;
  }

  const std::filesystem::path outdir = flags.at("out");
  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  if (ec) {
    err << "cannot create output directory '" << outdir.string() << "'\n";
    return 2;
  }
  {
    std::ofstream f(outdir / "report.json");
    f << result.report().dump(2) << "\n";
  }
  {
    std::ofstream f(outdir / "front.txt");
    f << result.summary();
  }
  for (std::size_t i = 0; i < result.selected.size(); ++i) {
    const auto& sel = result.selected[i];
    const std::string base = strfmt(
        "design%zu_%s", i,
        to_verilog_identifier(sel.design.point.to_string()).c_str());
    if (!sel.verilog.empty()) {
      std::ofstream f(outdir / (base + ".v"));
      f << sel.verilog;
    }
    if (!sel.def.empty()) {
      std::ofstream f(outdir / (base + ".def"));
      f << sel.def;
    }
  }
  out << result.summary();
  out << strfmt("\nwrote %zu artifact set(s) to %s\n", result.selected.size(),
                outdir.string().c_str());
  return 0;
}

/// The --sparsity/--supply/--seed/--population/--generations/--threads
/// flags and their range validation, shared by explore and sweep.  The
/// ranges mirror the explorer preconditions so a bad value is a diagnostic
/// and exit 2, never a contract abort inside a pool worker.
bool parse_dse_flags(const std::map<std::string, std::string>& flags,
                     EvalConditions* cond, Nsga2Options* dse,
                     std::ostream& err) {
  try {
    if (flags.count("sparsity"))
      cond->input_sparsity = std::stod(flags.at("sparsity"));
    if (flags.count("supply"))
      cond->supply_v = std::stod(flags.at("supply"));
    if (flags.count("seed"))
      dse->seed = static_cast<std::uint64_t>(std::stoull(flags.at("seed")));
    if (flags.count("population"))
      dse->population = std::stoi(flags.at("population"));
    if (flags.count("generations"))
      dse->generations = std::stoi(flags.at("generations"));
    if (flags.count("threads"))
      dse->threads = std::stoi(flags.at("threads"));
  } catch (...) {
    err << "bad numeric option value\n";
    return false;
  }
  if (cond->input_sparsity < 0 || cond->input_sparsity >= 1 ||
      cond->supply_v <= 0 || dse->population < 4 || dse->generations < 1 ||
      dse->threads < 0) {
    err << "option value out of range\n";
    return false;
  }
  return true;
}

int cmd_explore(const std::map<std::string, std::string>& flags,
                std::ostream& out, std::ostream& err) {
  if (!flags.count("wstore") || !flags.count("precision")) {
    err << "explore requires --wstore and --precision\n";
    return 2;
  }
  CompilerSpec spec;
  try {
    spec.wstore = std::stoll(flags.at("wstore"));
  } catch (...) {
    err << "bad --wstore value\n";
    return 2;
  }
  const auto precision = precision_from_name(flags.at("precision"));
  if (!precision) {
    err << "unknown precision '" << flags.at("precision") << "'\n";
    return 2;
  }
  spec.precision = *precision;
  if (!parse_dse_flags(flags, &spec.conditions, &spec.dse, err)) return 2;
  if (spec.wstore < 1) {
    err << "option value out of range\n";
    return 2;
  }
  spec.generate_rtl = false;
  spec.generate_layout = false;
  if (flags.count("cache-file")) spec.cache_file = flags.at("cache-file");

  const auto tech = load_technology(flags, err);
  if (!tech) return 2;
  const Compiler compiler(*tech);
  std::string run_err;
  const CompilerResult result = compiler.run(spec, nullptr, &run_err);
  if (!run_err.empty()) {
    err << run_err << "\n";
    return 2;
  }
  out << result.summary();
  return 0;
}

/// The full §IV validation grid (or a subset), run on the parallel sweep
/// engine with optional JSONL checkpoint/resume.  CSV goes to stdout;
/// --out additionally writes sweep.json and sweep.csv.
int cmd_sweep(const std::map<std::string, std::string>& flags,
              std::ostream& out, std::ostream& err) {
  SweepSpec spec;
  if (flags.count("spec")) {
    std::ifstream in(flags.at("spec"));
    if (!in) {
      err << "cannot open spec '" << flags.at("spec") << "'\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string jerr;
    const auto json = Json::parse(buf.str(), &jerr);
    if (!json) {
      err << jerr << "\n";
      return 2;
    }
    std::string serr;
    const auto parsed = SweepSpec::from_json(*json, &serr);
    if (!parsed) {
      err << serr << "\n";
      return 2;
    }
    spec = *parsed;
  }
  try {
    if (flags.count("wstores")) {
      spec.wstores.clear();
      for (const auto& field : split(flags.at("wstores"), ',')) {
        spec.wstores.push_back(std::stoll(trim(field)));
        if (spec.wstores.back() < 1) throw std::invalid_argument("wstore");
      }
    }
  } catch (...) {
    err << "bad numeric option value\n";
    return 2;
  }
  if (!parse_dse_flags(flags, &spec.conditions, &spec.dse, err)) return 2;
  if (flags.count("precisions")) {
    spec.precisions.clear();
    for (const auto& field : split(flags.at("precisions"), ',')) {
      const auto p = precision_from_name(trim(field));
      if (!p) {
        err << "unknown precision '" << trim(field) << "'\n";
        return 2;
      }
      spec.precisions.push_back(*p);
    }
    if (spec.precisions.empty()) {
      err << "--precisions must name at least one precision\n";
      return 2;
    }
  }
  if (flags.count("checkpoint")) spec.checkpoint = flags.at("checkpoint");
  if (flags.count("cache-file")) spec.cache_file = flags.at("cache-file");
  if (spec.wstores.empty()) {
    err << "option value out of range\n";
    return 2;
  }

  const auto tech = load_technology(flags, err);
  if (!tech) return 2;
  const Compiler compiler(*tech);

  // Coverage report only — read the checkpoint, run nothing.
  if (flags.count("resume-summary")) {
    std::string sum_err;
    const auto summary = summarize_checkpoint(compiler, spec, &sum_err);
    if (!summary) {
      err << sum_err << "\n";
      return 2;
    }
    out << summary->render(spec.checkpoint);
    return 0;
  }

  std::string sweep_err;
  const SweepResult result = run_sweep(compiler, spec, &sweep_err);
  if (!sweep_err.empty()) {
    err << sweep_err << "\n";
    return 2;
  }

  if (flags.count("out")) {
    const std::filesystem::path outdir = flags.at("out");
    std::error_code ec;
    std::filesystem::create_directories(outdir, ec);
    if (ec) {
      err << "cannot create output directory '" << outdir.string() << "'\n";
      return 2;
    }
    {
      std::ofstream f(outdir / "sweep.json");
      f << result.to_json().dump(2) << "\n";
    }
    {
      std::ofstream f(outdir / "sweep.csv");
      f << result.to_csv();
    }
    err << strfmt("wrote %zu cell(s) to %s/sweep.{csv,json}\n",
                  result.cells.size(), outdir.string().c_str());
  }
  out << result.to_csv();
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = args[0];
  // Valueless flags, per command (everything else takes "--key value").
  const std::vector<std::string> boolean_flags =
      command == "sweep" ? std::vector<std::string>{"resume-summary"}
                         : std::vector<std::string>{};
  std::map<std::string, std::string> flags;
  if (!parse_flags(args, 1, boolean_flags, &flags, err)) return 2;

  if (command == "compile") {
    if (!check_known(flags, {"spec", "out", "tech", "cache-file"}, err)) {
      return 2;
    }
    return cmd_compile(flags, out, err);
  }
  if (command == "explore") {
    if (!check_known(flags,
                     {"wstore", "precision", "sparsity", "supply", "seed",
                      "population", "generations", "threads", "tech",
                      "cache-file"},
                     err)) {
      return 2;
    }
    return cmd_explore(flags, out, err);
  }
  if (command == "sweep") {
    if (!check_known(flags,
                     {"spec", "out", "checkpoint", "cache-file",
                      "resume-summary", "wstores", "precisions", "sparsity",
                      "supply", "seed", "population", "generations",
                      "threads", "tech"},
                     err)) {
      return 2;
    }
    return cmd_sweep(flags, out, err);
  }
  if (command == "precisions") {
    for (const auto& p : all_precisions()) out << p.name << "\n";
    return 0;
  }
  if (command == "techlib") {
    out << write_techlib(Technology::tsmc28());
    return 0;
  }
  err << "unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace sega
