#include "compiler/cli.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "compiler/compiler.h"
#include "compiler/orchestrate.h"
#include "compiler/sweep.h"
#include "compiler/validate.h"
#include "cost/cost_cache.h"
#include "serve/server.h"
#include "tech/techlib_parser.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace sega {

namespace {

constexpr const char* kUsage =
    "usage: sega_dcim <command> [options]\n"
    "\n"
    "commands:\n"
    "  compile --spec <spec.json> --out <dir> [--tech <file.techlib>]\n"
    "          [--cache-file <path>] [--cost-model analytic|rtl]\n"
    "          [--calibration <file>] [--layout]\n"
    "  explore --wstore <n> --precision <name> [--sparsity <f>]\n"
    "          [--supply <v>] [--seed <n>] [--population <n>]\n"
    "          [--generations <n>] [--threads <n>] [--tech <file.techlib>]\n"
    "          [--cache-file <path>] [--cost-model analytic|rtl]\n"
    "          [--calibration <file>] [--layout]\n"
    "  sweep   [--spec <sweep.json>] [--out <dir>] [--checkpoint <path>]\n"
    "          [--cache-file <path>] [--resume-summary] [--shard <i/N>]\n"
    "          [--spawn-local <K>] [--heartbeat-every <k>]\n"
    "          [--wstores <n,n,...>]\n"
    "          [--precisions <name,name,...>] [--sparsity <f>]\n"
    "          [--supply <v>] [--seed <n>] [--population <n>]\n"
    "          [--generations <n>] [--threads <n>] [--tech <file.techlib>]\n"
    "          [--cost-model analytic|rtl] [--calibration <file>] [--layout]\n"
    "  orchestrate --workers <N> --checkpoint <path>\n"
    "          [--spec <sweep.json>] [--out <dir>] [--cache-file <path>]\n"
    "          [--max-retries <n>] [--stall-timeout <sec>]\n"
    "          [--poll-interval <sec>] [--backoff <sec>]\n"
    "          [--backoff-max <sec>] [--heartbeat-every <k>]\n"
    "          [--wstores <n,n,...>] [--precisions <name,name,...>]\n"
    "          [--sparsity <f>] [--supply <v>] [--seed <n>]\n"
    "          [--population <n>] [--generations <n>] [--threads <n>]\n"
    "          [--tech <file.techlib>] [--cost-model analytic|rtl]\n"
    "          [--calibration <file>] [--layout]\n"
    "  sweep-merge --checkpoint <path> --shards <N> [--spec <sweep.json>]\n"
    "          [--out <dir>] [--cache-file <path>] [--wstores <n,n,...>]\n"
    "          [--precisions <name,name,...>] [--sparsity <f>]\n"
    "          [--supply <v>] [--seed <n>] [--population <n>]\n"
    "          [--generations <n>] [--threads <n>] [--tech <file.techlib>]\n"
    "          [--cost-model analytic|rtl] [--calibration <file>] [--layout]\n"
    "  validate [--spec <validate.json>] [--out <dir>] [--tolerance <f>]\n"
    "          [--cache-file <path>] [--rtl-cache-file <path>]\n"
    "          [--checkpoint <path>] [--wstores <n,n,...>]\n"
    "          [--precisions <name,name,...>] [--sparsity <f>]\n"
    "          [--supply <v>] [--seed <n>] [--population <n>]\n"
    "          [--generations <n>] [--threads <n>] [--tech <file.techlib>]\n"
    "          [--calibrate <out.cal> | --calibration <file>] [--layout]\n"
    "  memo-compact --cache-file <path> [--shards <N>] [--out <path>]\n"
    "          [--extra <path,path,...>]\n"
    "  serve   [--socket <path>] [--tech <file.techlib>]\n"
    "          [--cache-file <path>] [--response-cache <n>]\n"
    "          [--calibration <file>] [--status] [--stop]\n"
    "  precisions\n"
    "  techlib\n"
    "\n"
    "daemon client options (compile/explore/sweep/validate, handled by the\n"
    "sega_dcim binary before the command runs):\n"
    "  --socket <path>   use the serve daemon at <path> (default:\n"
    "                    $SEGA_SERVE_SOCKET, else /tmp/sega-serve-<uid>.sock)\n"
    "  --no-daemon       never use a daemon; always run in-process\n";

/// Parse --key value pairs; flags named in @p boolean_flags take no value
/// (their presence stores "1").  Returns false on malformed input.
bool parse_flags(const std::vector<std::string>& args, std::size_t start,
                 const std::vector<std::string>& boolean_flags,
                 std::map<std::string, std::string>* flags,
                 std::ostream& err) {
  for (std::size_t i = start; i < args.size();) {
    if (!starts_with(args[i], "--")) {
      err << "malformed option '" << args[i] << "'\n";
      return false;
    }
    const std::string name = args[i].substr(2);
    const bool is_boolean =
        std::find(boolean_flags.begin(), boolean_flags.end(), name) !=
        boolean_flags.end();
    if (is_boolean) {
      (*flags)[name] = "1";
      i += 1;
      continue;
    }
    if (i + 1 >= args.size()) {
      err << "malformed option '" << args[i] << "'\n";
      return false;
    }
    (*flags)[name] = args[i + 1];
    i += 2;
  }
  return true;
}

/// Reject unknown flags (typos must not silently change a run).
bool check_known(const std::map<std::string, std::string>& flags,
                 const std::vector<std::string>& known, std::ostream& err) {
  for (const auto& [key, value] : flags) {
    bool ok = false;
    for (const auto& k : known) {
      if (key == k) ok = true;
    }
    if (!ok) {
      err << "unknown option '--" << key << "'\n";
      return false;
    }
  }
  return true;
}

/// Read and parse a --spec JSON file; nullopt after a diagnostic on @p err.
/// The typed Spec::from_json stage stays with the caller — only the
/// file-and-JSON plumbing is shared.
std::optional<Json> load_spec_json(const std::string& path,
                                   std::ostream& err) {
  std::ifstream in(path);
  if (!in) {
    err << "cannot open spec '" << path << "'\n";
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string jerr;
  auto json = Json::parse(buf.str(), &jerr);
  if (!json) err << jerr << "\n";
  return json;
}

std::optional<Technology> load_technology(
    const std::map<std::string, std::string>& flags, const CliHooks& hooks,
    std::ostream& err) {
  const auto it = flags.find("tech");
  if (hooks.tech != nullptr) {
    // Defense in depth: the daemon's dispatcher already rejects --tech; a
    // per-request technology could not match the resident shared caches.
    if (it != flags.end()) {
      err << "--tech is not available via the daemon (use --no-daemon)\n";
      return std::nullopt;
    }
    return *hooks.tech;
  }
  if (it == flags.end()) return Technology::tsmc28();
  std::ifstream in(it->second);
  if (!in) {
    err << "cannot open techlib '" << it->second << "'\n";
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string perr;
  auto tech = parse_techlib(buf.str(), &perr);
  if (!tech) err << perr << "\n";
  return tech;
}

/// Parse `--cost-model analytic|rtl` into *kind.  Absent flag leaves the
/// spec's backend (possibly set via the spec file) untouched.
bool parse_cost_model_flag(const std::map<std::string, std::string>& flags,
                           CostModelKind* kind, std::ostream& err) {
  const auto it = flags.find("cost-model");
  if (it == flags.end()) return true;
  const auto parsed = cost_model_kind_from_name(it->second);
  if (!parsed) {
    err << "unknown cost model '" << it->second
        << "' (expected analytic or rtl)\n";
    return false;
  }
  *kind = *parsed;
  return true;
}

/// The host's shared cache for this spec's backend/conditions/calibration,
/// when hooks provide one (daemon dispatch); null otherwise.  A non-null
/// cache makes Compiler::run ignore spec.cache_file — the host owns
/// persistence.  @p calibration_file must be the spec's calibration path
/// ("" for uncalibrated): handing a calibrated run an uncalibrated shared
/// cache (or vice versa) would silently evaluate the wrong model.
CostCache* shared_cache_for(const CliHooks& hooks, CostModelKind kind,
                            const EvalConditions& cond,
                            const std::string& calibration_file,
                            bool layout) {
  return hooks.cache_for
             ? hooks.cache_for(kind, cond, calibration_file, layout)
             : nullptr;
}

int cmd_compile(const std::map<std::string, std::string>& flags,
                std::ostream& out, std::ostream& err, const CliHooks& hooks) {
  if (!flags.count("spec") || !flags.count("out")) {
    err << "compile requires --spec and --out\n";
    return 2;
  }
  const auto json = load_spec_json(flags.at("spec"), err);
  if (!json) return 2;
  std::string serr;
  const auto spec = CompilerSpec::from_json(*json, &serr);
  if (!spec) {
    err << serr << "\n";
    return 2;
  }
  const auto tech = load_technology(flags, hooks, err);
  if (!tech) return 2;

  CompilerSpec run_spec = *spec;
  if (flags.count("cache-file")) run_spec.cache_file = flags.at("cache-file");
  if (flags.count("calibration")) {
    run_spec.calibration_file = flags.at("calibration");
  }
  if (flags.count("layout")) run_spec.layout = true;
  if (!parse_cost_model_flag(flags, &run_spec.cost_model, err)) return 2;

  const Compiler compiler(*tech);
  std::string run_err;
  const CompilerResult result = compiler.run(
      run_spec,
      shared_cache_for(hooks, run_spec.cost_model, run_spec.conditions,
                       run_spec.calibration_file, run_spec.layout),
      &run_err);
  if (!run_err.empty()) {
    err << run_err << "\n";
    return 2;
  }

  const std::filesystem::path outdir = flags.at("out");
  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  if (ec) {
    err << "cannot create output directory '" << outdir.string() << "'\n";
    return 2;
  }
  {
    std::ofstream f(outdir / "report.json");
    f << result.report().dump(2) << "\n";
  }
  {
    std::ofstream f(outdir / "front.txt");
    f << result.summary();
  }
  for (std::size_t i = 0; i < result.selected.size(); ++i) {
    const auto& sel = result.selected[i];
    const std::string base = strfmt(
        "design%zu_%s", i,
        to_verilog_identifier(sel.design.point.to_string()).c_str());
    if (!sel.verilog.empty()) {
      std::ofstream f(outdir / (base + ".v"));
      f << sel.verilog;
    }
    if (!sel.def.empty()) {
      std::ofstream f(outdir / (base + ".def"));
      f << sel.def;
    }
  }
  out << result.summary();
  out << strfmt("\nwrote %zu artifact set(s) to %s\n", result.selected.size(),
                outdir.string().c_str());
  return 0;
}

/// The --sparsity/--supply/--seed/--population/--generations/--threads
/// flags and their range validation, shared by explore and sweep.  The
/// ranges mirror the explorer preconditions so a bad value is a diagnostic
/// and exit 2, never a contract abort inside a pool worker.
bool parse_dse_flags(const std::map<std::string, std::string>& flags,
                     EvalConditions* cond, Nsga2Options* dse,
                     std::ostream& err) {
  try {
    if (flags.count("sparsity"))
      cond->input_sparsity = std::stod(flags.at("sparsity"));
    if (flags.count("supply"))
      cond->supply_v = std::stod(flags.at("supply"));
    if (flags.count("seed"))
      dse->seed = static_cast<std::uint64_t>(std::stoull(flags.at("seed")));
    if (flags.count("population"))
      dse->population = std::stoi(flags.at("population"));
    if (flags.count("generations"))
      dse->generations = std::stoi(flags.at("generations"));
    if (flags.count("threads"))
      dse->threads = std::stoi(flags.at("threads"));
  } catch (...) {
    err << "bad numeric option value\n";
    return false;
  }
  if (cond->input_sparsity < 0 || cond->input_sparsity >= 1 ||
      cond->supply_v <= 0 || dse->population < 4 || dse->generations < 1 ||
      dse->threads < 0) {
    err << "option value out of range\n";
    return false;
  }
  return true;
}

int cmd_explore(const std::map<std::string, std::string>& flags,
                std::ostream& out, std::ostream& err, const CliHooks& hooks) {
  if (!flags.count("wstore") || !flags.count("precision")) {
    err << "explore requires --wstore and --precision\n";
    return 2;
  }
  CompilerSpec spec;
  try {
    spec.wstore = std::stoll(flags.at("wstore"));
  } catch (...) {
    err << "bad --wstore value\n";
    return 2;
  }
  const auto precision = precision_from_name(flags.at("precision"));
  if (!precision) {
    err << "unknown precision '" << flags.at("precision") << "'\n";
    return 2;
  }
  spec.precision = *precision;
  if (!parse_dse_flags(flags, &spec.conditions, &spec.dse, err)) return 2;
  if (spec.wstore < 1) {
    err << "option value out of range\n";
    return 2;
  }
  spec.generate_rtl = false;
  spec.generate_layout = false;
  if (flags.count("cache-file")) spec.cache_file = flags.at("cache-file");
  if (flags.count("calibration")) {
    spec.calibration_file = flags.at("calibration");
  }
  if (flags.count("layout")) spec.layout = true;
  if (!parse_cost_model_flag(flags, &spec.cost_model, err)) return 2;

  const auto tech = load_technology(flags, hooks, err);
  if (!tech) return 2;
  const Compiler compiler(*tech);
  std::string run_err;
  const CompilerResult result = compiler.run(
      spec,
      shared_cache_for(hooks, spec.cost_model, spec.conditions,
                       spec.calibration_file, spec.layout),
      &run_err);
  if (!run_err.empty()) {
    err << run_err << "\n";
    return 2;
  }
  out << result.summary();
  return 0;
}

/// Build a SweepSpec from --spec plus the grid/DSE/path override flags —
/// shared by sweep and sweep-merge (the merge must describe the identical
/// grid or the shard fingerprints won't match).  Returns false after
/// writing a diagnostic.
bool build_sweep_spec(const std::map<std::string, std::string>& flags,
                      SweepSpec* spec, std::ostream& err) {
  if (flags.count("spec")) {
    const auto json = load_spec_json(flags.at("spec"), err);
    if (!json) return false;
    std::string serr;
    const auto parsed = SweepSpec::from_json(*json, &serr);
    if (!parsed) {
      err << serr << "\n";
      return false;
    }
    *spec = *parsed;
  }
  try {
    if (flags.count("wstores")) {
      spec->wstores.clear();
      for (const auto& field : split(flags.at("wstores"), ',')) {
        spec->wstores.push_back(std::stoll(trim(field)));
        if (spec->wstores.back() < 1) throw std::invalid_argument("wstore");
      }
    }
  } catch (...) {
    err << "bad numeric option value\n";
    return false;
  }
  if (!parse_dse_flags(flags, &spec->conditions, &spec->dse, err)) {
    return false;
  }
  if (flags.count("precisions")) {
    spec->precisions.clear();
    for (const auto& field : split(flags.at("precisions"), ',')) {
      const auto p = precision_from_name(trim(field));
      if (!p) {
        err << "unknown precision '" << trim(field) << "'\n";
        return false;
      }
      spec->precisions.push_back(*p);
    }
    if (spec->precisions.empty()) {
      err << "--precisions must name at least one precision\n";
      return false;
    }
  }
  if (flags.count("checkpoint")) spec->checkpoint = flags.at("checkpoint");
  if (flags.count("cache-file")) spec->cache_file = flags.at("cache-file");
  if (flags.count("calibration")) {
    spec->calibration_file = flags.at("calibration");
  }
  if (flags.count("layout")) spec->layout = true;
  if (flags.count("heartbeat-every")) {
    try {
      spec->heartbeat_every = std::stoi(flags.at("heartbeat-every"));
    } catch (...) {
      err << "bad numeric option value\n";
      return false;
    }
    if (spec->heartbeat_every < 0) {
      err << "option value out of range\n";
      return false;
    }
    if (spec->heartbeat_every > 0 && spec->checkpoint.empty()) {
      err << "--heartbeat-every requires --checkpoint (the heartbeat and "
             "index files sit next to it)\n";
      return false;
    }
  }
  if (!parse_cost_model_flag(flags, &spec->cost_model, err)) return false;
  if (spec->wstores.empty()) {
    err << "option value out of range\n";
    return false;
  }
  return true;
}

/// Strict decimal-int parse: the whole string must be the number (unlike
/// std::stoi, which silently accepts trailing garbage like "1x").
bool parse_int_strict(const std::string& s, int* out) {
  if (s.empty()) return false;
  std::size_t consumed = 0;
  int value = 0;
  try {
    value = std::stoi(s, &consumed);
  } catch (...) {
    return false;
  }
  if (consumed != s.size()) return false;
  *out = value;
  return true;
}

/// Parse `--shard i/N` into spec->shard.  Absent flag leaves the spec's
/// shard (possibly set via the spec file) untouched.
bool parse_shard_flag(const std::map<std::string, std::string>& flags,
                      SweepSpec* spec, std::ostream& err) {
  const auto it = flags.find("shard");
  if (it == flags.end()) return true;
  const auto parts = split(it->second, '/');
  int index = 0;
  int count = 0;
  const bool ok = parts.size() == 2 &&
                  parse_int_strict(trim(parts[0]), &index) &&
                  parse_int_strict(trim(parts[1]), &count);
  if (!ok || count < 1 || index < 0 || index >= count) {
    err << "--shard must be i/N with 0 <= i < N\n";
    return false;
  }
  spec->shard.index = index;
  spec->shard.count = count;
  return true;
}

/// Write sweep.json/sweep.csv under --out (when given) and the CSV to
/// stdout — shared by sweep, sweep --spawn-local, and sweep-merge.
int write_sweep_outputs(const SweepResult& result,
                        const std::map<std::string, std::string>& flags,
                        std::ostream& out, std::ostream& err) {
  if (flags.count("out")) {
    const std::filesystem::path outdir = flags.at("out");
    std::error_code ec;
    std::filesystem::create_directories(outdir, ec);
    if (ec) {
      err << "cannot create output directory '" << outdir.string() << "'\n";
      return 2;
    }
    {
      std::ofstream f(outdir / "sweep.json");
      f << result.to_json().dump(2) << "\n";
    }
    {
      std::ofstream f(outdir / "sweep.csv");
      f << result.to_csv();
    }
    err << strfmt("wrote %zu cell(s) to %s/sweep.{csv,json}\n",
                  result.cells.size(), outdir.string().c_str());
  }
  out << result.to_csv();
  return 0;
}

/// Fork K shard workers on this host (each computing its slice into its own
/// checkpoint/memo shard), wait for all of them, then fan the shards back
/// into the unified result — the zero-to-distributed path of a sweep on one
/// machine.
int run_spawn_local(const Compiler& compiler, const SweepSpec& spec,
                    int workers,
                    const std::map<std::string, std::string>& flags,
                    std::ostream& out, std::ostream& err) {
  std::vector<pid_t> children;
  for (int i = 0; i < workers; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      err << "fork failed\n";
      for (const pid_t child : children) {
        int status = 0;
        ::waitpid(child, &status, 0);
      }
      return 2;
    }
    if (pid == 0) {
      // Worker process.  A positive thread count forces run_sweep to build
      // a fresh pool: the parent's lazily created global pool object was
      // inherited by fork but its worker threads were not, so it must never
      // be touched here.  _Exit skips atexit/static destructors for the
      // same reason (run_sweep has already flushed and closed its files).
      SweepSpec worker = spec;
      worker.shard = ShardSpec{};
      worker.shard.index = i;
      worker.shard.count = workers;
      if (worker.dse.threads == 0) {
        // Divide the host between the workers instead of oversubscribing it
        // K-fold; an explicit --threads is per-worker and kept as given.
        worker.dse.threads =
            std::max(1, ThreadPool::default_threads() / workers);
      }
      std::string worker_error;
      run_sweep(compiler, worker, &worker_error);
      if (!worker_error.empty()) {
        std::fprintf(stderr, "[sega] shard %d/%d: %s\n", i, workers,
                     worker_error.c_str());
        std::_Exit(2);
      }
      std::_Exit(0);
    }
    children.push_back(pid);
  }
  bool worker_failed = false;
  for (int i = 0; i < workers; ++i) {
    int status = 0;
    pid_t waited;
    do {
      waited = ::waitpid(children[i], &status, 0);
    } while (waited < 0 && errno == EINTR);
    // A wait that failed outright (ECHILD — someone reaped the child first)
    // must count as a worker failure: treating an unknown outcome as
    // success would merge a possibly half-written shard.
    if (waited != children[i] || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      err << strfmt("shard %d/%d worker failed\n", i, workers);
      worker_failed = true;
    }
  }
  if (worker_failed) return 2;
  std::string merge_error;
  const SweepResult merged =
      merge_sweep_shards(compiler, spec, workers, &merge_error);
  if (!merge_error.empty()) {
    err << merge_error << "\n";
    return 2;
  }
  return write_sweep_outputs(merged, flags, out, err);
}

/// The full §IV validation grid (or a subset), run on the parallel sweep
/// engine with optional JSONL checkpoint/resume, optionally as one shard of
/// an N-worker set (--shard) or as a K-process local fleet (--spawn-local).
/// CSV goes to stdout; --out additionally writes sweep.json and sweep.csv.
int cmd_sweep(const std::map<std::string, std::string>& flags,
              std::ostream& out, std::ostream& err, const CliHooks& hooks) {
  SweepSpec spec;
  if (!build_sweep_spec(flags, &spec, err)) return 2;
  if (!parse_shard_flag(flags, &spec, err)) return 2;

  int spawn_local = 0;
  if (flags.count("spawn-local")) {
    if (!parse_int_strict(flags.at("spawn-local"), &spawn_local)) {
      err << "bad numeric option value\n";
      return 2;
    }
    if (spawn_local < 1) {
      err << "option value out of range\n";
      return 2;
    }
    if (flags.count("shard") || spec.shard.active()) {
      err << "--spawn-local and --shard are mutually exclusive\n";
      return 2;
    }
    if (flags.count("resume-summary")) {
      err << "--spawn-local and --resume-summary are mutually exclusive\n";
      return 2;
    }
    if (spec.checkpoint.empty()) {
      err << "--spawn-local requires --checkpoint (the shard files are the "
             "fan-in)\n";
      return 2;
    }
  }

  const auto tech = load_technology(flags, hooks, err);
  if (!tech) return 2;
  const Compiler compiler(*tech);

  // Coverage report only — read the checkpoint, run nothing.
  if (flags.count("resume-summary")) {
    std::string sum_err;
    const auto summary = summarize_checkpoint(compiler, spec, &sum_err);
    if (!summary) {
      err << sum_err << "\n";
      return 2;
    }
    const std::string shown =
        spec.shard.active()
            ? shard_file_path(spec.checkpoint, spec.shard.index,
                              spec.shard.count)
            : spec.checkpoint;
    out << summary->render(shown);
    return 0;
  }

  if (spawn_local > 0) {
    return run_spawn_local(compiler, spec, spawn_local, flags, out, err);
  }

  spec.shared_cache = shared_cache_for(hooks, spec.cost_model,
                                       spec.conditions,
                                       spec.calibration_file, spec.layout);
  spec.progress = hooks.sweep_progress;
  std::string sweep_err;
  const SweepResult result = run_sweep(compiler, spec, &sweep_err);
  if (!sweep_err.empty()) {
    err << sweep_err << "\n";
    return 2;
  }
  return write_sweep_outputs(result, flags, out, err);
}

/// Fan N shard checkpoints (and memo shards) back into one result: unified
/// JSON/CSV byte-identical to an unsharded run, a unified resumable
/// checkpoint, and a unified cost memo.
int cmd_sweep_merge(const std::map<std::string, std::string>& flags,
                    std::ostream& out, std::ostream& err) {
  SweepSpec spec;
  if (!build_sweep_spec(flags, &spec, err)) return 2;
  if (spec.checkpoint.empty()) {
    err << "sweep-merge requires --checkpoint (the shard base path)\n";
    return 2;
  }
  if (!flags.count("shards")) {
    err << "sweep-merge requires --shards <N>\n";
    return 2;
  }
  int shards = 0;
  if (!parse_int_strict(flags.at("shards"), &shards)) {
    err << "bad numeric option value\n";
    return 2;
  }
  if (shards < 1) {
    err << "option value out of range\n";
    return 2;
  }

  const auto tech = load_technology(flags, CliHooks{}, err);
  if (!tech) return 2;
  const Compiler compiler(*tech);
  std::string merge_error;
  const SweepResult result =
      merge_sweep_shards(compiler, spec, shards, &merge_error);
  if (!merge_error.empty()) {
    err << merge_error << "\n";
    return 2;
  }
  return write_sweep_outputs(result, flags, out, err);
}

/// Parse a positive-seconds flag into *out; absent flag keeps the default.
bool parse_seconds_flag(const std::map<std::string, std::string>& flags,
                        const char* name, double* out, std::ostream& err) {
  const auto it = flags.find(name);
  if (it == flags.end()) return true;
  try {
    *out = std::stod(it->second);
  } catch (...) {
    err << "bad numeric option value\n";
    return false;
  }
  if (*out <= 0) {
    err << "option value out of range\n";
    return false;
  }
  return true;
}

/// Supervised N-worker sweep: fork the fleet, watch heartbeats, SIGKILL
/// stalls, relaunch failures with exponential backoff (resuming from the
/// dead worker's shard checkpoint), and merge the shards on completion.
/// Exit 0 on success, 1 on a supervision/merge failure (report on stderr,
/// orchestrate.json under --out either way), 2 on usage errors.
int cmd_orchestrate(const std::map<std::string, std::string>& flags,
                    std::ostream& out, std::ostream& err) {
  OrchestrateSpec ospec;
  if (!build_sweep_spec(flags, &ospec.sweep, err)) return 2;
  if (!flags.count("workers")) {
    err << "orchestrate requires --workers <N>\n";
    return 2;
  }
  if (!parse_int_strict(flags.at("workers"), &ospec.workers)) {
    err << "bad numeric option value\n";
    return 2;
  }
  if (ospec.workers < 1) {
    err << "option value out of range\n";
    return 2;
  }
  if (flags.count("max-retries")) {
    if (!parse_int_strict(flags.at("max-retries"), &ospec.max_retries)) {
      err << "bad numeric option value\n";
      return 2;
    }
    if (ospec.max_retries < 0) {
      err << "option value out of range\n";
      return 2;
    }
  }
  if (!parse_seconds_flag(flags, "stall-timeout", &ospec.stall_timeout_s,
                          err) ||
      !parse_seconds_flag(flags, "poll-interval", &ospec.poll_interval_s,
                          err) ||
      !parse_seconds_flag(flags, "backoff", &ospec.backoff_initial_s, err) ||
      !parse_seconds_flag(flags, "backoff-max", &ospec.backoff_max_s, err)) {
    return 2;
  }
  if (ospec.backoff_max_s < ospec.backoff_initial_s) {
    err << "--backoff-max must be >= --backoff\n";
    return 2;
  }
  if (ospec.sweep.checkpoint.empty()) {
    err << "orchestrate requires --checkpoint (the shard checkpoints are "
           "the crash-recovery state and the merge fan-in)\n";
    return 2;
  }

  const auto tech = load_technology(flags, CliHooks{}, err);
  if (!tech) return 2;
  const Compiler compiler(*tech);
  SweepResult result;
  const OrchestrateReport report = run_orchestrate(compiler, ospec, &result);
  err << report.render();
  if (flags.count("out")) {
    const std::filesystem::path outdir = flags.at("out");
    std::error_code ec;
    std::filesystem::create_directories(outdir, ec);
    if (ec) {
      err << "cannot create output directory '" << outdir.string() << "'\n";
      return 2;
    }
    std::ofstream f(outdir / "orchestrate.json");
    f << report.to_json().dump(2) << "\n";
  }
  if (!report.success) return 1;
  return write_sweep_outputs(result, flags, out, err);
}

/// Rewrite a base memo plus its shard deltas into one deduplicated memo —
/// streamed (no metrics materialized), byte-identical to loading every
/// source into one cache and saving it.
int cmd_memo_compact(const std::map<std::string, std::string>& flags,
                     std::ostream& out, std::ostream& err) {
  if (!flags.count("cache-file")) {
    err << "memo-compact requires --cache-file (the base memo path)\n";
    return 2;
  }
  const std::string base = flags.at("cache-file");
  int shards = 0;
  if (flags.count("shards")) {
    if (!parse_int_strict(flags.at("shards"), &shards)) {
      err << "bad numeric option value\n";
      return 2;
    }
    if (shards < 1) {
      err << "option value out of range\n";
      return 2;
    }
  }
  std::vector<std::string> sources = {base};
  for (int i = 0; i < shards; ++i) {
    sources.push_back(shard_file_path(base, i, shards));
  }
  // --extra folds additional delta files into the compaction — the serve
  // daemon's `<base>.serve-<hash>` memo deltas, or any other save_delta
  // output with a matching fingerprint.
  if (flags.count("extra")) {
    for (const auto& field : split(flags.at("extra"), ',')) {
      const std::string path = trim(field);
      if (!path.empty()) sources.push_back(path);
    }
  }
  const std::string out_path = flags.count("out") ? flags.at("out") : base;
  std::string compact_error;
  CostCache::CompactStats stats;
  if (!CostCache::compact_memo_files(sources, out_path, &compact_error,
                                     &stats)) {
    err << compact_error << "\n";
    return 2;
  }
  out << strfmt(
      "memo-compact: %d file(s) -> %zu entr%s (%zu duplicate(s) dropped, "
      "%zu corrupt line(s) skipped) at %s\n",
      stats.files_merged, stats.entries, stats.entries == 1 ? "y" : "ies",
      stats.duplicates, stats.corrupt_lines, out_path.c_str());
  return 0;
}

/// Analytic-vs-RTL knee cross-validation: DSE the grid with the analytic
/// model, re-measure every knee through the RTL model, report per-metric
/// divergence.  Exit 0 when every knee is within --tolerance, 1 when the
/// tolerance is exceeded, 2 on errors.
int cmd_validate(const std::map<std::string, std::string>& flags,
                 std::ostream& out, std::ostream& err, const CliHooks& hooks) {
  ValidateSpec spec;
  if (flags.count("spec")) {
    const auto json = load_spec_json(flags.at("spec"), err);
    if (!json) return 2;
    std::string serr;
    const auto parsed = ValidateSpec::from_json(*json, &serr);
    if (!parsed) {
      err << serr << "\n";
      return 2;
    }
    spec = *parsed;
  }
  // Grid/DSE/path overrides share the sweep flag logic (--spec was already
  // consumed as a *validate* spec above; --calibration belongs to the
  // validate spec, not the inner knee DSE — see ValidateSpec).
  std::map<std::string, std::string> grid_flags = flags;
  grid_flags.erase("spec");
  grid_flags.erase("calibration");
  grid_flags.erase("calibrate");
  if (!build_sweep_spec(grid_flags, &spec.sweep, err)) return 2;
  if (flags.count("calibrate") && flags.count("calibration")) {
    err << "--calibrate (fit a fresh artifact) and --calibration (compare "
           "under an existing one) are mutually exclusive\n";
    return 2;
  }
  if (flags.count("calibration")) {
    spec.calibration_file = flags.at("calibration");
  }
  if (flags.count("tolerance")) {
    try {
      spec.tolerance = std::stod(flags.at("tolerance"));
    } catch (...) {
      err << "bad numeric option value\n";
      return 2;
    }
    if (spec.tolerance <= 0) {
      err << "option value out of range\n";
      return 2;
    }
  }
  if (flags.count("rtl-cache-file")) {
    spec.rtl_cache_file = flags.at("rtl-cache-file");
  }

  const auto tech = load_technology(flags, hooks, err);
  if (!tech) return 2;
  const Compiler compiler(*tech);
  // validate always DSEs analytically and re-measures through RTL, so it
  // draws on both of the host's shared caches when available.  Both are the
  // *uncalibrated* stacks even under --calibration: the knee DSE always
  // runs uncalibrated (see ValidateSpec) and the RTL side is the
  // measurement itself.
  spec.sweep.shared_cache = shared_cache_for(hooks, CostModelKind::kAnalytic,
                                             spec.sweep.conditions,
                                             /*calibration_file=*/"",
                                             spec.sweep.layout);
  spec.shared_rtl_cache = shared_cache_for(hooks, CostModelKind::kRtl,
                                           spec.sweep.conditions,
                                           /*calibration_file=*/"",
                                           spec.sweep.layout);

  // --calibrate: fit over the measured knees, save the artifact, and report
  // the before/after envelopes; the verdict (and exit code) judges the
  // freshly calibrated comparison.
  if (flags.count("calibrate")) {
    std::string cal_error;
    const auto creport =
        run_validate_calibrate(compiler, spec, flags.at("calibrate"),
                               &cal_error);
    if (!creport) {
      err << cal_error << "\n";
      return 2;
    }
    if (flags.count("out")) {
      const std::filesystem::path outdir = flags.at("out");
      std::error_code ec;
      std::filesystem::create_directories(outdir, ec);
      if (ec) {
        err << "cannot create output directory '" << outdir.string()
            << "'\n";
        return 2;
      }
      {
        std::ofstream f(outdir / "calibrate.json");
        f << creport->to_json().dump(2) << "\n";
      }
      {
        std::ofstream f(outdir / "calibrate.csv");
        f << creport->to_csv();
      }
      err << strfmt("wrote the calibration report to "
                    "%s/calibrate.{csv,json}\n",
                    outdir.string().c_str());
    }
    out << creport->render();
    if (!creport->pass()) {
      err << strfmt("validate: %zu knee point(s) exceed tolerance %.3g "
                    "after calibration\n",
                    creport->after.failures(), creport->after.tolerance);
      return 1;
    }
    return 0;
  }

  std::string run_error;
  const ValidateReport report = run_validate(compiler, spec, &run_error);
  if (!run_error.empty()) {
    err << run_error << "\n";
    return 2;
  }

  if (flags.count("out")) {
    const std::filesystem::path outdir = flags.at("out");
    std::error_code ec;
    std::filesystem::create_directories(outdir, ec);
    if (ec) {
      err << "cannot create output directory '" << outdir.string() << "'\n";
      return 2;
    }
    {
      std::ofstream f(outdir / "validate.json");
      f << report.to_json().dump(2) << "\n";
    }
    {
      std::ofstream f(outdir / "validate.csv");
      f << report.to_csv();
    }
    err << strfmt("wrote %zu knee comparison(s) to %s/validate.{csv,json}\n",
                  report.rows.size(), outdir.string().c_str());
  }
  out << report.render();
  if (!report.pass()) {
    err << strfmt("validate: %zu knee point(s) exceed tolerance %.3g\n",
                  report.failures(), report.tolerance);
    return 1;
  }
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  return run_cli_hooked(args, out, err, CliHooks{});
}

int run_cli_hooked(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err, const CliHooks& hooks) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = args[0];
  // Valueless flags, per command (everything else takes "--key value").
  std::vector<std::string> boolean_flags;
  if (command == "sweep") boolean_flags = {"resume-summary", "layout"};
  if (command == "serve") boolean_flags = {"status", "stop"};
  if (command == "compile" || command == "explore" ||
      command == "orchestrate" || command == "sweep-merge" ||
      command == "validate") {
    boolean_flags = {"layout"};
  }
  std::map<std::string, std::string> flags;
  if (!parse_flags(args, 1, boolean_flags, &flags, err)) return 2;

  if (command == "compile") {
    if (!check_known(flags,
                     {"spec", "out", "tech", "cache-file", "cost-model",
                      "calibration", "layout"},
                     err)) {
      return 2;
    }
    return cmd_compile(flags, out, err, hooks);
  }
  if (command == "explore") {
    if (!check_known(flags,
                     {"wstore", "precision", "sparsity", "supply", "seed",
                      "population", "generations", "threads", "tech",
                      "cache-file", "cost-model", "calibration", "layout"},
                     err)) {
      return 2;
    }
    return cmd_explore(flags, out, err, hooks);
  }
  if (command == "sweep") {
    if (!check_known(flags,
                     {"spec", "out", "checkpoint", "cache-file",
                      "resume-summary", "shard", "spawn-local",
                      "heartbeat-every", "wstores", "precisions", "sparsity",
                      "supply", "seed", "population", "generations",
                      "threads", "tech", "cost-model", "calibration",
                      "layout"},
                     err)) {
      return 2;
    }
    return cmd_sweep(flags, out, err, hooks);
  }
  if (command == "serve") {
    if (hooks.tech != nullptr) {
      err << "serve cannot run inside the daemon (use --no-daemon)\n";
      return 2;
    }
    if (!check_known(flags,
                     {"socket", "tech", "cache-file", "response-cache",
                      "calibration", "status", "stop"},
                     err)) {
      return 2;
    }
    return run_serve_cli(flags, out, err);
  }
  if (command == "orchestrate") {
    if (!check_known(flags,
                     {"spec", "out", "checkpoint", "cache-file", "workers",
                      "max-retries", "stall-timeout", "poll-interval",
                      "backoff", "backoff-max", "heartbeat-every", "wstores",
                      "precisions", "sparsity", "supply", "seed",
                      "population", "generations", "threads", "tech",
                      "cost-model", "calibration", "layout"},
                     err)) {
      return 2;
    }
    return cmd_orchestrate(flags, out, err);
  }
  if (command == "memo-compact") {
    if (!check_known(flags, {"cache-file", "shards", "out", "extra"}, err)) {
      return 2;
    }
    return cmd_memo_compact(flags, out, err);
  }
  if (command == "sweep-merge") {
    if (!check_known(flags,
                     {"spec", "out", "checkpoint", "cache-file", "shards",
                      "wstores", "precisions", "sparsity", "supply", "seed",
                      "population", "generations", "threads", "tech",
                      "cost-model", "calibration", "layout"},
                     err)) {
      return 2;
    }
    return cmd_sweep_merge(flags, out, err);
  }
  if (command == "validate") {
    if (!check_known(flags,
                     {"spec", "out", "tolerance", "cache-file",
                      "rtl-cache-file", "checkpoint", "wstores", "precisions",
                      "sparsity", "supply", "seed", "population",
                      "generations", "threads", "tech", "calibrate",
                      "calibration", "layout"},
                     err)) {
      return 2;
    }
    return cmd_validate(flags, out, err, hooks);
  }
  if (command == "precisions") {
    for (const auto& p : all_precisions()) out << p.name << "\n";
    return 0;
  }
  if (command == "techlib") {
    out << write_techlib(Technology::tsmc28());
    return 0;
  }
  err << "unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace sega
