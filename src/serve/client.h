// Thin client of the `sega_dcim serve` daemon (serve/server.h).
//
// The sega_dcim binary routes eligible commands through a running daemon
// transparently: if connecting to the socket fails — no daemon — the caller
// runs the command in-process, byte-identical by construction.  The
// fallback decision happens strictly *before* the request is sent; once a
// request is on the wire a lost daemon is an error, never a silent re-run
// (the request may have had side effects).
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.h"

namespace sega {

/// The daemon rendezvous path: $SEGA_SERVE_SOCKET when set, else
/// `/tmp/sega-serve-<uid>.sock` (per-user, so parallel users never collide).
std::string default_socket_path();

/// True when @p argv may be served by a daemon: one of compile / explore /
/// sweep / validate, without the flags the daemon rejects (--tech,
/// --cache-file, --rtl-cache-file, --spawn-local, --shard) and without
/// --resume-summary (a local file inspection; nothing to warm).
bool daemon_eligible(const std::vector<std::string>& argv);

/// Copy of @p argv with the path-valued flags the daemon resolves on *its*
/// side of the socket (--spec, --out, --checkpoint) made absolute against
/// this process's cwd — the daemon's cwd is unrelated.
std::vector<std::string> absolutize_for_daemon(
    const std::vector<std::string>& argv);

/// Run @p argv via the daemon at @p socket_path.  Returns the exit code on
/// a completed round trip (the daemon's out/err bytes are replayed onto the
/// given streams; progress lines are consumed silently).  Returns nullopt
/// when no daemon is reachable — the caller falls back in-process.  A
/// connection lost after the request was sent is exit 3 with a diagnostic,
/// never nullopt.
std::optional<int> run_via_daemon(const std::string& socket_path,
                                  const std::vector<std::string>& argv,
                                  std::ostream& out, std::ostream& err);

/// Health check: true when a daemon answers a ping at @p socket_path;
/// *pid (when given) receives the daemon's pid.
bool daemon_ping(const std::string& socket_path, int* pid = nullptr);

/// The daemon's status payload, or nullopt (with *error) when unreachable.
std::optional<Json> daemon_status(const std::string& socket_path,
                                  std::string* error = nullptr);

/// Ask the daemon to shut down gracefully (drain, flush memo, remove its
/// socket).  True once the daemon acknowledged.
bool daemon_shutdown(const std::string& socket_path,
                     std::string* error = nullptr);

}  // namespace sega
