#include "serve/client.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "serve/protocol.h"
#include "util/socket.h"
#include "util/strings.h"

namespace sega {

namespace {

/// Responses can be large — a full sweep CSV rides inside one result line.
constexpr std::size_t kMaxResponseBytes = std::size_t{256} * 1024 * 1024;

/// Read the next well-formed response object; nullopt (with *error) on a
/// dead or misbehaving daemon.
std::optional<Json> read_response(LineReader& reader, std::string* error) {
  std::string line;
  for (;;) {
    switch (reader.read_line(&line)) {
      case LineReader::Status::kOk: {
        if (trim(line).empty()) continue;
        auto parsed = Json::parse(line);
        if (!parsed || !parsed->is_object() || !parsed->contains("type") ||
            !parsed->at("type").is_string()) {
          if (error) *error = "malformed response from daemon";
          return std::nullopt;
        }
        return parsed;
      }
      case LineReader::Status::kEof:
        if (error) *error = "daemon closed the connection";
        return std::nullopt;
      case LineReader::Status::kTooLong:
        if (error) *error = "oversized response from daemon";
        return std::nullopt;
      case LineReader::Status::kError:
        if (error) *error = "error reading from daemon";
        return std::nullopt;
    }
  }
}

/// Connect, send one command with no argv, return its single response.
std::optional<Json> simple_request(const std::string& socket_path,
                                   const char* cmd, std::string* error) {
  std::string connect_error;
  Fd fd = unix_connect(socket_path, &connect_error);
  if (!fd.valid()) {
    if (error) {
      *error = strfmt("no daemon at '%s' (%s)", socket_path.c_str(),
                      connect_error.c_str());
    }
    return std::nullopt;
  }
  Json req = Json::object();
  req["id"] = 0;
  req["cmd"] = cmd;
  if (!send_all(fd.get(), req.dump() + "\n")) {
    if (error) *error = "cannot write to daemon";
    return std::nullopt;
  }
  LineReader reader(fd.get(), kMaxResponseBytes);
  return read_response(reader, error);
}

}  // namespace

std::string default_socket_path() {
  if (const char* env = std::getenv("SEGA_SERVE_SOCKET"); env && *env) {
    return env;
  }
  return strfmt("/tmp/sega-serve-%d.sock", static_cast<int>(::getuid()));
}

bool daemon_eligible(const std::vector<std::string>& argv) {
  if (argv.empty()) return false;
  const std::string& command = argv[0];
  if (command != "compile" && command != "explore" && command != "sweep" &&
      command != "validate") {
    return false;
  }
  static const char* const kLocalOnly[] = {
      "--tech",        "--cache-file", "--rtl-cache-file",
      "--spawn-local", "--shard",      "--resume-summary"};
  for (const std::string& arg : argv) {
    for (const char* flag : kLocalOnly) {
      if (arg == flag) return false;
    }
  }
  return true;
}

std::vector<std::string> absolutize_for_daemon(
    const std::vector<std::string>& argv) {
  std::vector<std::string> result = argv;
  for (std::size_t i = 0; i + 1 < result.size(); ++i) {
    if (result[i] == "--spec" || result[i] == "--out" ||
        result[i] == "--checkpoint" || result[i] == "--calibration" ||
        result[i] == "--calibrate") {
      std::error_code ec;
      const auto absolute = std::filesystem::absolute(result[i + 1], ec);
      if (!ec) result[i + 1] = absolute.string();
      ++i;
    }
  }
  return result;
}

std::optional<int> run_via_daemon(const std::string& socket_path,
                                  const std::vector<std::string>& argv,
                                  std::ostream& out, std::ostream& err) {
  if (argv.empty()) return std::nullopt;
  Fd fd = unix_connect(socket_path);
  if (!fd.valid()) return std::nullopt;  // no daemon — run in-process

  Json req = Json::object();
  req["id"] = 1;
  req["cmd"] = "run";
  Json arr = Json::array();
  for (const std::string& arg : argv) arr.push_back(arg);
  req["argv"] = std::move(arr);
  if (!send_all(fd.get(), req.dump() + "\n")) {
    // The line never completed, so the daemon cannot have executed it —
    // in-process fallback is still side-effect-safe.
    return std::nullopt;
  }

  // From here the request is live: failures are reported, never silently
  // retried in-process (the daemon may already have written files).
  LineReader reader(fd.get(), kMaxResponseBytes);
  for (;;) {
    std::string read_error;
    const auto response = read_response(reader, &read_error);
    if (!response) {
      err << "sega_dcim: daemon request failed: " << read_error << "\n";
      return 3;
    }
    const std::string& type = response->at("type").as_string();
    if (type == "progress") continue;  // liveness only; bytes come in result
    if (type == "error") {
      const std::string detail =
          response->contains("error") && response->at("error").is_string()
              ? response->at("error").as_string()
              : "unknown error";
      err << "sega_dcim: daemon rejected request: " << detail << "\n";
      return 3;
    }
    if (type == "result" && response->contains("exit") &&
        response->at("exit").is_number() && response->contains("out") &&
        response->at("out").is_string() && response->contains("err") &&
        response->at("err").is_string()) {
      out << response->at("out").as_string();
      err << response->at("err").as_string();
      return static_cast<int>(response->at("exit").as_int());
    }
    err << "sega_dcim: daemon request failed: malformed response from "
           "daemon\n";
    return 3;
  }
}

bool daemon_ping(const std::string& socket_path, int* pid) {
  std::string error;
  const auto response = simple_request(socket_path, "ping", &error);
  if (!response || !response->contains("type") ||
      response->at("type").as_string() != "pong") {
    return false;
  }
  if (pid != nullptr && response->contains("pid") &&
      response->at("pid").is_number()) {
    *pid = static_cast<int>(response->at("pid").as_int());
  }
  return true;
}

std::optional<Json> daemon_status(const std::string& socket_path,
                                  std::string* error) {
  const auto response = simple_request(socket_path, "status", error);
  if (!response) return std::nullopt;
  if (response->at("type").as_string() != "status" ||
      !response->contains("status")) {
    if (error) *error = "malformed response from daemon";
    return std::nullopt;
  }
  return response->at("status");
}

bool daemon_shutdown(const std::string& socket_path, std::string* error) {
  const auto response = simple_request(socket_path, "shutdown", error);
  if (!response) return false;
  if (response->at("type").as_string() != "result") {
    if (error) *error = "malformed response from daemon";
    return false;
  }
  return true;
}

}  // namespace sega
