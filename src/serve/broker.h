// RequestBroker — request-level coalescing and response caching for the
// `sega_dcim serve` daemon.
//
// Two layers of dedup sit between N clients and the evaluation engine:
//
//   1. In-flight coalescing (this class): concurrent requests with an
//      identical argv execute ONCE.  The first arrival (the leader) runs the
//      executor; later arrivals (followers) attach to the in-flight entry,
//      replay its buffered progress records, stream subsequent ones live,
//      and receive a copy of the leader's result — byte-identical across
//      all subscribers by construction, since there is only one execution.
//   2. A bounded LRU response cache for *repeated* (non-overlapping)
//      requests the server marks cacheable — pure queries like `explore`
//      whose only output is the response itself.  Requests with filesystem
//      side effects (compile --out, sweep checkpoints) are never cached:
//      the client expects the files to (re)appear.
//
// Below the broker, the per-configuration CostCache + BatchCoalescer stack
// (cost/batch_coalescer.h) dedups at the design-point level, so even
// *different* requests overlapping in evaluated points share work.  The
// broker is what turns "N clients ask the same question" into one answer
// computed once.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.h"

namespace sega {

/// One finished execution: the exact bytes every subscriber receives.
struct RunOutcome {
  int exit = 0;
  std::string out;
  std::string err;
};

class RequestBroker {
 public:
  /// Runs one argv to completion.  Called on the leader's thread, outside
  /// any broker lock; must not throw (a throw is mapped to exit 99 so
  /// followers never deadlock).  @p progress receives streamed records
  /// (sweep cells) in completion order.
  using Executor = std::function<int(
      const std::vector<std::string>& argv, std::ostream& out,
      std::ostream& err, const std::function<void(const Json&)>& progress)>;

  /// Per-subscriber progress delivery (e.g. "write one progress line to
  /// this client's socket").  Invoked in record order, never concurrently
  /// for one subscriber.
  using ProgressSink = std::function<void(const Json&)>;

  /// @p response_cache_entries bounds the LRU of finished cacheable
  /// responses (0 disables response caching).
  RequestBroker(Executor executor, std::size_t response_cache_entries);

  RequestBroker(const RequestBroker&) = delete;
  RequestBroker& operator=(const RequestBroker&) = delete;

  /// Serve @p argv: from the response cache, by attaching to an identical
  /// in-flight execution, or by executing (as leader).  @p cacheable marks
  /// side-effect-free requests whose outcome may be stored and replayed.
  /// @p progress may be null.
  RunOutcome run(const std::vector<std::string>& argv, bool cacheable,
                 const ProgressSink& progress);

  /// Counters (exact) for `serve --status` and the dedup tests.
  std::uint64_t requests() const { return requests_.load(); }
  std::uint64_t executions() const { return executions_.load(); }
  std::uint64_t coalesced() const { return coalesced_.load(); }
  std::uint64_t response_hits() const { return response_hits_.load(); }
  std::size_t response_entries() const;

 private:
  /// One in-flight execution; all fields guarded by mu_.
  struct Entry {
    std::vector<Json> progress;  ///< buffered records, in emission order
    bool done = false;
    RunOutcome outcome;
    std::condition_variable cv;
  };

  /// Canonical request identity: the compact JSON dump of argv.
  static std::string key_of(const std::vector<std::string>& argv);

  void cache_store(const std::string& key, const RunOutcome& outcome);

  Executor executor_;
  const std::size_t cache_capacity_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> inflight_;
  /// LRU: most recent at front; map values point into the list.
  std::list<std::string> lru_;
  std::map<std::string, std::pair<RunOutcome, std::list<std::string>::iterator>>
      cache_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> executions_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> response_hits_{0};
};

}  // namespace sega
