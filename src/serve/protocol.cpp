#include "serve/protocol.h"

#include "util/strings.h"

namespace sega {

namespace {

Json base_response(const Json& id, const char* type) {
  Json r = Json::object();
  r["id"] = id;
  r["type"] = type;
  return r;
}

}  // namespace

bool parse_request(const std::string& line, ServeRequest* req,
                   std::string* error) {
  std::string parse_error;
  std::optional<Json> parsed = Json::parse(line, &parse_error);
  if (!parsed) {
    *error = strfmt("malformed request: %s", parse_error.c_str());
    return false;
  }
  if (!parsed->is_object()) {
    *error = "malformed request: not a JSON object";
    return false;
  }
  req->id = parsed->contains("id") ? parsed->at("id") : Json();
  if (!parsed->contains("cmd") || !parsed->at("cmd").is_string()) {
    *error = "malformed request: missing string 'cmd'";
    return false;
  }
  const std::string& cmd = parsed->at("cmd").as_string();
  req->argv.clear();
  if (cmd == "ping") {
    req->cmd = ServeRequest::Cmd::kPing;
  } else if (cmd == "status") {
    req->cmd = ServeRequest::Cmd::kStatus;
  } else if (cmd == "shutdown") {
    req->cmd = ServeRequest::Cmd::kShutdown;
  } else if (cmd == "run") {
    req->cmd = ServeRequest::Cmd::kRun;
    if (!parsed->contains("argv") || !parsed->at("argv").is_array()) {
      *error = "malformed request: 'run' needs an 'argv' array";
      return false;
    }
    const std::vector<Json>& elems = parsed->at("argv").elements();
    if (elems.empty()) {
      *error = "malformed request: empty 'argv'";
      return false;
    }
    req->argv.reserve(elems.size());
    for (const Json& e : elems) {
      if (!e.is_string()) {
        *error = "malformed request: 'argv' must contain only strings";
        return false;
      }
      req->argv.push_back(e.as_string());
    }
  } else {
    *error = strfmt("malformed request: unknown cmd '%s'", cmd.c_str());
    return false;
  }
  return true;
}

std::string error_line(const Json& id, const std::string& message) {
  Json r = base_response(id, "error");
  r["error"] = message;
  return r.dump() + "\n";
}

std::string pong_line(const Json& id, int pid) {
  Json r = base_response(id, "pong");
  r["pid"] = pid;
  return r.dump() + "\n";
}

std::string status_line(const Json& id, const Json& status) {
  Json r = base_response(id, "status");
  r["status"] = status;
  return r.dump() + "\n";
}

std::string progress_line(const Json& id, const Json& record) {
  Json r = base_response(id, "progress");
  r["record"] = record;
  return r.dump() + "\n";
}

std::string result_line(const Json& id, int exit_code, const std::string& out,
                        const std::string& err) {
  Json r = base_response(id, "result");
  r["exit"] = exit_code;
  r["out"] = out;
  r["err"] = err;
  return r.dump() + "\n";
}

}  // namespace sega
