#include "serve/broker.h"

#include <sstream>

namespace sega {

RequestBroker::RequestBroker(Executor executor,
                             std::size_t response_cache_entries)
    : executor_(std::move(executor)), cache_capacity_(response_cache_entries) {}

std::string RequestBroker::key_of(const std::vector<std::string>& argv) {
  // The compact JSON dump is an unambiguous canonical encoding: unlike
  // join(argv, " "), arguments containing spaces or quotes cannot collide.
  Json arr = Json::array();
  for (const std::string& a : argv) arr.push_back(a);
  return arr.dump();
}

std::size_t RequestBroker::response_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void RequestBroker::cache_store(const std::string& key,
                                const RunOutcome& outcome) {
  if (cache_capacity_ == 0) return;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second.first = outcome;
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return;
  }
  while (cache_.size() >= cache_capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  cache_.emplace(key, std::make_pair(outcome, lru_.begin()));
}

RunOutcome RequestBroker::run(const std::vector<std::string>& argv,
                              bool cacheable, const ProgressSink& progress) {
  requests_.fetch_add(1);
  const std::string key = key_of(argv);
  std::shared_ptr<Entry> entry;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (cacheable) {
      auto hit = cache_.find(key);
      if (hit != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, hit->second.second);
        response_hits_.fetch_add(1);
        return hit->second.first;
      }
    }
    auto in = inflight_.find(key);
    if (in != inflight_.end()) {
      entry = in->second;
      coalesced_.fetch_add(1);
    } else {
      entry = std::make_shared<Entry>();
      inflight_[key] = entry;
      leader = true;
    }
  }

  if (leader) {
    executions_.fetch_add(1);
    std::ostringstream out;
    std::ostringstream err;
    RunOutcome outcome;
    // The leader's own progress sink is fed directly (same thread, record
    // order); the shared buffer feeds followers, past and future.
    auto stream = [&](const Json& record) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        entry->progress.push_back(record);
      }
      entry->cv.notify_all();
      if (progress) progress(record);
    };
    try {
      outcome.exit = executor_(argv, out, err, stream);
    } catch (const std::exception& e) {
      outcome.exit = 99;
      err << "internal error: " << e.what() << "\n";
    } catch (...) {
      outcome.exit = 99;
      err << "internal error\n";
    }
    outcome.out = out.str();
    outcome.err = err.str();
    {
      std::lock_guard<std::mutex> lock(mu_);
      entry->outcome = outcome;
      entry->done = true;
      inflight_.erase(key);
      // Only clean successes are worth replaying: a failure (missing spec
      // file, bad flag) may be fixed by the next attempt's environment.
      if (cacheable && outcome.exit == 0) cache_store(key, outcome);
    }
    entry->cv.notify_all();
    return outcome;
  }

  // Follower: replay buffered progress, stream new records as the leader
  // emits them, then take a copy of the shared outcome.  The sink runs
  // outside the lock — a slow client must not stall the broker.
  std::size_t consumed = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    while (consumed < entry->progress.size()) {
      const Json record = entry->progress[consumed++];
      if (progress) {
        lock.unlock();
        progress(record);
        lock.lock();
      }
    }
    if (entry->done && consumed == entry->progress.size()) {
      return entry->outcome;
    }
    entry->cv.wait(lock, [&] {
      return entry->done || consumed < entry->progress.size();
    });
  }
}

}  // namespace sega
