// The `sega_dcim serve` daemon: an always-on evaluation service that keeps
// the expensive state of a CLI invocation — technology, analytic/RTL cost
// backends, the warm evaluation memo — resident in one process, and serves
// CLI commands to any number of concurrent clients over a Unix-domain
// socket (serve/protocol.h).
//
// Why a daemon: every cold `sega_dcim explore` pays process start, techlib
// construction, memo-file parse, and the full DSE evaluation bill before
// printing a line.  Under the daemon those costs are paid once; repeated
// and concurrent requests then dedup at three levels:
//
//   response   identical finished requests replay cached bytes
//   request    identical concurrent requests execute once (RequestBroker)
//   point      distinct requests overlapping in evaluated design points
//              share one warm CostCache per (backend, conditions), with a
//              BatchCoalescer underneath merging small concurrent batches
//
// Requests dispatch through run_cli_hooked — the *same* code path as the
// standalone binary — so a daemon response is byte-identical to
// `--no-daemon` output by construction.  Commands that would give the
// daemon a private environment (--tech, --cache-file, --rtl-cache-file) or
// process-level semantics (--spawn-local, --shard, orchestrate,
// sweep-merge, memo-compact, serve) are rejected; the thin client runs
// those in-process instead.
//
// Memo persistence: with ServeOptions::cache_file set, each per-config
// cache seeds from that base memo (entries marked imported) plus its own
// `<cache_file>.serve-<hash>` delta file, and flushes only its delta —
// periodically (every kFlushEveryRuns completed requests and on idle, so a
// crashed or SIGKILLed daemon loses at most a few requests' worth of
// evaluations) and finally on shutdown.  `sega_dcim memo-compact
// --cache-file <base> --extra <deltas>` folds the deltas back into the
// base.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <tuple>

#include "cost/batch_coalescer.h"
#include "cost/cost_cache.h"
#include "serve/broker.h"
#include "serve/protocol.h"
#include "tech/technology.h"
#include "util/socket.h"

namespace sega {

struct ServeOptions {
  std::string socket_path;
  /// Base path of the persistent evaluation memo; empty disables
  /// persistence (the daemon is then warm only for its own lifetime).
  std::string cache_file;
  /// Calibration artifact to verify at startup (`serve --calibration`):
  /// the daemon fail-fasts on a damaged artifact or one fitted for a
  /// different model/technology, instead of every calibrated request
  /// failing later.  Requests still name their artifact explicitly via
  /// --calibration — the preload never silently calibrates a request that
  /// did not ask (daemon and --no-daemon runs must stay byte-identical).
  std::string calibration_file;
  std::size_t max_request_bytes = kMaxRequestBytes;
  /// LRU capacity of the finished-response cache (0 disables it).
  std::size_t response_cache_entries = 64;
};

class ServeServer {
 public:
  ServeServer(Technology tech, ServeOptions opts);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Bind the socket and start accepting.  False (with *error) when the
  /// path is unusable or a daemon is already listening on it.
  bool start(std::string* error = nullptr);

  /// Graceful shutdown, idempotent: stop accepting, unlink the socket (so
  /// new clients fall back in-process immediately), wake idle connections
  /// with EOF, let in-flight requests run to completion and receive their
  /// results, join every session, flush the memo deltas.
  void stop();

  /// True once a client sent a shutdown request; the hosting loop (or
  /// test) then calls stop().
  bool shutdown_requested() const;

  /// Block until shutdown_requested() or @p interrupted() (polled about
  /// every 200 ms — the signal-flag check of the foreground daemon).
  void wait(const std::function<bool()>& interrupted);

  /// The shared warm cache for (backend, conditions, calibration artifact,
  /// layout toggle), created on first use: CostCache over BatchCoalescer
  /// over make_cost_model.  Stable for the server's lifetime.  A non-empty
  /// @p calibration_file keys a *separate* stack by the artifact's content
  /// digest (calibrated and uncalibrated memos must never mix); when the
  /// artifact fails to load this returns null and the request's in-process
  /// fallback path surfaces the diagnostic.  @p layout likewise keys a
  /// separate stack — layout-on and layout-off metrics (and memo
  /// fingerprints) differ.
  CostCache* cache_for(CostModelKind kind, const EvalConditions& cond,
                       const std::string& calibration_file = "",
                       bool layout = false);

  /// The `serve --status` payload: pid/socket, broker counters, per-config
  /// cache + coalescer counters, active connection count.
  Json status_json() const;

  const RequestBroker& broker() const { return broker_; }
  const std::string& socket_path() const { return opts_.socket_path; }

 private:
  /// One client connection.  fd is owned by the session entry (closed at
  /// join time, never by the handler — stop() must be able to shutdown()
  /// it without racing a close).
  struct Session {
    std::thread thread;
    int fd = -1;
    std::atomic<bool> done{false};
  };

  /// One (backend, conditions, calibration, layout) evaluation stack.
  struct CacheStack {
    CostModelKind kind = CostModelKind::kAnalytic;
    EvalConditions cond;
    std::string calibration_digest;  ///< empty for the uncalibrated stack
    bool layout = false;
    std::unique_ptr<CostCache> cache;
    const BatchCoalescer* coalescer = nullptr;
    std::string delta_path;  ///< empty when persistence is off
    bool base_loaded = false;
    /// Entry count at the last delta flush; a periodic (non-forced) flush
    /// skips stacks that have not grown since.
    std::size_t flushed_size = 0;
  };
  /// (kind, supply, sparsity, activity, calibration digest, layout) — the
  /// digest, never the artifact path, so two paths to the same artifact
  /// share one stack and an edited artifact gets a fresh one.
  using CacheKey = std::tuple<int, double, double, double, std::string, bool>;

  void accept_loop();
  void reap_finished();
  void handle_connection(Session& session);
  int execute(const std::vector<std::string>& argv, std::ostream& out,
              std::ostream& err, const std::function<void(const Json&)>& progress);
  /// Persist every stack's memo delta via the atomic `.serve-<hash>` delta
  /// writer.  Forced (shutdown) flushes write every stack — including
  /// header-only deltas for stacks with no fresh entries, exactly the
  /// historical drain behavior.  Periodic (non-forced) flushes skip stacks
  /// whose entry count has not grown since their last flush; the written
  /// bytes for a grown stack are identical to what a shutdown-only flush
  /// would have written at the same entry set.
  void flush_memos(bool force);

  const Technology tech_;
  const ServeOptions opts_;
  RequestBroker broker_;

  Fd listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::once_flag stop_once_;

  mutable std::mutex sessions_mu_;
  std::map<int, std::shared_ptr<Session>> sessions_;
  int next_session_ = 0;

  mutable std::mutex caches_mu_;
  std::map<CacheKey, CacheStack> caches_;

  /// Periodic delta-flush cadence: after this many completed run requests
  /// the accept loop persists grown memo deltas, so a crashed or SIGKILLed
  /// daemon loses at most this many requests' worth of evaluations (it
  /// also flushes when the daemon goes idle).  Crash-durability only —
  /// never changes any response byte.
  static constexpr std::uint64_t kFlushEveryRuns = 8;
  /// Completed run requests (incremented after each broker run finishes).
  std::atomic<std::uint64_t> completed_runs_{0};

  mutable std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

/// The `sega_dcim serve` subcommand (cli.cpp dispatches here): with
/// --status or --stop, a thin client call against the daemon; otherwise the
/// foreground daemon itself, serving until SIGTERM/SIGINT or a client
/// shutdown request, then draining gracefully.
int run_serve_cli(const std::map<std::string, std::string>& flags,
                  std::ostream& out, std::ostream& err);

}  // namespace sega
