// Wire protocol of the `sega_dcim serve` daemon.
//
// One request per newline-terminated line of compact JSON (the repo-wide
// JSONL convention, util/socket.h):
//
//   {"id": <any>, "cmd": "ping" | "status" | "shutdown" | "run",
//    "argv": ["explore", "--wstore", "1024", ...]}
//
// `id` is an opaque client correlation token echoed verbatim on every
// response line; `argv` (run only) is the CLI argument vector after the
// subcommand-level daemon flags were stripped — the daemon executes it
// through the same run_cli code path as the standalone binary, which is what
// makes daemon and --no-daemon output byte-identical by construction.
//
// Responses (one or more lines per request, `type` discriminated):
//
//   {"id":..., "type":"error",    "error": "<message>"}
//   {"id":..., "type":"pong",     "pid": <int>}
//   {"id":..., "type":"status",   "status": {...}}
//   {"id":..., "type":"progress", "record": {...}}     (streamed, 0..n)
//   {"id":..., "type":"result",   "exit": <int>, "out": "...", "err": "..."}
//
// Every request terminates in exactly one "error" or "result"/"pong"/
// "status" line; "progress" lines (sweep cells as they complete) only ever
// precede their "result".  Requests on one connection are served strictly
// in order.
#pragma once

#include <string>
#include <vector>

#include "util/json.h"

namespace sega {

/// Upper bound for one request line; larger lines are rejected with a clean
/// per-request error (LineReader resyncs past them).  Generous: the largest
/// legitimate request is an argv of file paths, a few hundred bytes.
constexpr std::size_t kMaxRequestBytes = std::size_t{8} * 1024 * 1024;

/// A parsed request.
struct ServeRequest {
  enum class Cmd { kPing, kStatus, kShutdown, kRun };

  Json id;  ///< echoed verbatim; null when the client sent none
  Cmd cmd = Cmd::kPing;
  std::vector<std::string> argv;  ///< kRun only
};

/// Parse one request line.  False (with *error set) on malformed JSON, a
/// non-object, an unknown/missing cmd, or a non-string-array argv.
bool parse_request(const std::string& line, ServeRequest* req,
                   std::string* error);

/// Response builders.  Each returns one compact JSON line including the
/// trailing '\n', ready for send_all().  @p id is echoed verbatim.
std::string error_line(const Json& id, const std::string& message);
std::string pong_line(const Json& id, int pid);
std::string status_line(const Json& id, const Json& status);
std::string progress_line(const Json& id, const Json& record);
std::string result_line(const Json& id, int exit_code, const std::string& out,
                        const std::string& err);

}  // namespace sega
