#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "compiler/cli.h"
#include "cost/calibrate.h"
#include "serve/client.h"
#include "tech/techlib_parser.h"
#include "util/strings.h"

namespace sega {

namespace {

/// Commands with process-level or multi-process semantics that make no
/// sense inside a resident daemon; the thin client runs them in-process.
bool command_rejected(const std::string& command) {
  return command == "orchestrate" || command == "sweep-merge" ||
         command == "memo-compact" || command == "serve";
}

/// Flags that would give one request a private environment (its own
/// technology or memo files) or fork worker processes — both incompatible
/// with shared resident state.  The client never forwards them; rejecting
/// them here too keeps hand-written clients honest.
const char* const kRejectedFlags[] = {"--tech", "--cache-file",
                                      "--rtl-cache-file", "--spawn-local",
                                      "--shard"};

bool run_request_allowed(const std::vector<std::string>& argv,
                         std::string* reject) {
  if (command_rejected(argv[0])) {
    *reject = strfmt("command '%s' is not available via the daemon (run "
                     "with --no-daemon)",
                     argv[0].c_str());
    return false;
  }
  for (const std::string& arg : argv) {
    for (const char* flag : kRejectedFlags) {
      if (arg == flag) {
        *reject = strfmt("%s is not available via the daemon (run with "
                         "--no-daemon)",
                         flag);
        return false;
      }
    }
  }
  return true;
}

/// Side-effect-free requests — nothing written to the filesystem — may be
/// served from the finished-response cache.  Anything with --out or
/// --checkpoint must re-execute so its files (re)appear, and compile
/// always writes artifacts.  Calibration requests are never cached either:
/// --calibrate writes the artifact file, and a --calibration response
/// depends on the artifact's *content*, which can change between two
/// byte-identical argv lines.
bool run_request_cacheable(const std::vector<std::string>& argv) {
  if (argv[0] == "compile") return false;
  for (const std::string& arg : argv) {
    if (arg == "--out" || arg == "--checkpoint" || arg == "--calibrate" ||
        arg == "--calibration") {
      return false;
    }
  }
  return true;
}

/// FNV-1a over the cache-config key material — the stable suffix of a
/// per-config memo delta file name.  The uncalibrated, layout-off material
/// is exactly the historical format, so existing delta files keep their
/// names; a calibrated stack appends the artifact digest, a layout-enabled
/// stack appends "|layout", and each gets its own delta.
std::uint32_t config_hash(CostModelKind kind, const EvalConditions& cond,
                          const std::string& calibration_digest, bool layout) {
  std::string material =
      strfmt("%d|%.17g|%.17g|%.17g", static_cast<int>(kind), cond.supply_v,
             cond.input_sparsity, cond.activity);
  if (!calibration_digest.empty()) material += "|" + calibration_digest;
  if (layout) material += "|layout";
  std::uint32_t h = 2166136261u;
  for (const char c : material) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

Json coalescer_json(const BatchCoalescer& c) {
  Json j = Json::object();
  j["tickets"] = c.tickets();
  j["direct_batches"] = c.direct_batches();
  j["inner_batches"] = c.inner_batches();
  j["inner_points"] = c.inner_points();
  j["max_coalesced"] = static_cast<std::uint64_t>(c.max_coalesced());
  return j;
}

}  // namespace

ServeServer::ServeServer(Technology tech, ServeOptions opts)
    : tech_(std::move(tech)),
      opts_(std::move(opts)),
      broker_(
          [this](const std::vector<std::string>& argv, std::ostream& out,
                 std::ostream& err,
                 const std::function<void(const Json&)>& progress) {
            return execute(argv, out, err, progress);
          },
          opts_.response_cache_entries) {}

ServeServer::~ServeServer() { stop(); }

bool ServeServer::start(std::string* error) {
  listener_ = unix_listen(opts_.socket_path, error);
  if (!listener_.valid()) return false;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
  return true;
}

void ServeServer::stop() {
  if (!started_) return;
  std::call_once(stop_once_, [this] {
    stopping_.store(true);
    if (accept_thread_.joinable()) accept_thread_.join();
    // Unlink before draining: from this moment new clients fail to connect
    // and silently fall back in-process instead of queueing behind a dying
    // daemon.
    listener_.reset();
    ::unlink(opts_.socket_path.c_str());
    // Wake idle connections with EOF; in-flight requests keep running and
    // still deliver their results (only the read side is shut).
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [id, session] : sessions_) {
        (void)id;
        if (!session->done.load()) ::shutdown(session->fd, SHUT_RD);
      }
    }
    std::map<int, std::shared_ptr<Session>> drained;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      drained.swap(sessions_);
    }
    for (auto& [id, session] : drained) {
      (void)id;
      if (session->thread.joinable()) session->thread.join();
      ::close(session->fd);
    }
    flush_memos(/*force=*/true);
  });
  started_ = false;
}

bool ServeServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  return shutdown_requested_;
}

void ServeServer::wait(const std::function<bool()>& interrupted) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  while (!shutdown_requested_ && !(interrupted && interrupted())) {
    shutdown_cv_.wait_for(lock, std::chrono::milliseconds(200));
  }
}

void ServeServer::accept_loop() {
  // Completed-runs watermark of the last periodic delta flush.  Local to
  // the accept thread — the only periodic flusher; the forced shutdown
  // flush in stop() runs after this thread is joined.
  std::uint64_t flushed_runs = 0;
  while (!stopping_.load()) {
    bool fatal = false;
    Fd conn = unix_accept(listener_.get(), /*timeout_ms=*/200, &fatal);
    reap_finished();
    const std::uint64_t done_runs = completed_runs_.load();
    if (done_runs > flushed_runs) {
      bool idle = true;
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        for (const auto& [id, session] : sessions_) {
          (void)id;
          if (!session->done.load()) {
            idle = false;
            break;
          }
        }
      }
      // Flush every kFlushEveryRuns completed requests, or as soon as the
      // daemon goes idle — so a quiet daemon never sits on unflushed work.
      if (idle || done_runs - flushed_runs >= kFlushEveryRuns) {
        flush_memos(/*force=*/false);
        flushed_runs = done_runs;
      }
    }
    if (!conn.valid()) {
      if (fatal) break;
      continue;
    }
    auto session = std::make_shared<Session>();
    session->fd = conn.release();
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const int id = next_session_++;
    session->thread = std::thread([this, session] {
      handle_connection(*session);
      session->done.store(true);
    });
    sessions_.emplace(id, session);
  }
}

void ServeServer::reap_finished() {
  std::vector<std::shared_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->done.load()) {
        finished.push_back(it->second);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& session : finished) {
    if (session->thread.joinable()) session->thread.join();
    ::close(session->fd);
  }
}

void ServeServer::handle_connection(Session& session) {
  LineReader reader(session.fd, opts_.max_request_bytes);
  std::string line;
  for (;;) {
    const LineReader::Status status = reader.read_line(&line);
    if (status == LineReader::Status::kEof ||
        status == LineReader::Status::kError) {
      return;
    }
    if (status == LineReader::Status::kTooLong) {
      if (!send_all(session.fd,
                    error_line(Json(), strfmt("request exceeds %zu bytes",
                                              opts_.max_request_bytes)))) {
        return;
      }
      continue;
    }
    if (trim(line).empty()) continue;
    ServeRequest req;
    std::string parse_error;
    if (!parse_request(line, &req, &parse_error)) {
      if (!send_all(session.fd, error_line(Json(), parse_error))) return;
      continue;
    }
    switch (req.cmd) {
      case ServeRequest::Cmd::kPing:
        if (!send_all(session.fd,
                      pong_line(req.id, static_cast<int>(::getpid())))) {
          return;
        }
        break;
      case ServeRequest::Cmd::kStatus:
        if (!send_all(session.fd, status_line(req.id, status_json()))) {
          return;
        }
        break;
      case ServeRequest::Cmd::kShutdown: {
        send_all(session.fd,
                 result_line(req.id, 0,
                             strfmt("daemon %d shutting down\n",
                                    static_cast<int>(::getpid())),
                             ""));
        {
          std::lock_guard<std::mutex> lock(shutdown_mu_);
          shutdown_requested_ = true;
        }
        shutdown_cv_.notify_all();
        break;
      }
      case ServeRequest::Cmd::kRun: {
        std::string reject;
        if (!run_request_allowed(req.argv, &reject)) {
          if (!send_all(session.fd, error_line(req.id, reject))) return;
          break;
        }
        // All writes to this connection happen on this thread (the broker
        // invokes the sink on the subscriber's own thread), so progress
        // lines can never interleave with the result line.
        const Json id = req.id;
        const int fd = session.fd;
        const auto sink = [fd, &id](const Json& record) {
          send_all(fd, progress_line(id, record));
        };
        const RunOutcome outcome =
            broker_.run(req.argv, run_request_cacheable(req.argv), sink);
        completed_runs_.fetch_add(1);
        if (!send_all(session.fd, result_line(req.id, outcome.exit,
                                              outcome.out, outcome.err))) {
          return;
        }
        break;
      }
    }
  }
}

int ServeServer::execute(const std::vector<std::string>& argv,
                         std::ostream& out, std::ostream& err,
                         const std::function<void(const Json&)>& progress) {
  CliHooks hooks;
  hooks.tech = &tech_;
  hooks.cache_for = [this](CostModelKind kind, const EvalConditions& cond,
                           const std::string& calibration_file, bool layout) {
    return cache_for(kind, cond, calibration_file, layout);
  };
  hooks.sweep_progress = progress;
  return run_cli_hooked(argv, out, err, hooks);
}

CostCache* ServeServer::cache_for(CostModelKind kind,
                                  const EvalConditions& cond,
                                  const std::string& calibration_file,
                                  bool layout) {
  // A calibrated stack is keyed by the artifact's *content digest*, never
  // the request's path string.  Load failures return null: the request then
  // builds its own stack in-process and surfaces the loader's diagnostic —
  // the daemon must not invent a different error path.
  std::shared_ptr<const Calibration> calibration;
  if (!calibration_file.empty()) {
    if (kind != CostModelKind::kAnalytic) return nullptr;
    std::string cal_error;
    auto loaded = load_calibration_for(calibration_file, tech_, cond,
                                       &cal_error);
    if (!loaded) return nullptr;
    calibration = std::make_shared<const Calibration>(std::move(*loaded));
  }
  const std::string digest = calibration ? calibration->digest() : "";
  const CacheKey key{static_cast<int>(kind),  cond.supply_v,
                     cond.input_sparsity,     cond.activity,
                     digest,                  layout};
  std::lock_guard<std::mutex> lock(caches_mu_);
  const auto it = caches_.find(key);
  if (it != caches_.end()) return it->second.cache.get();

  CacheStack stack;
  stack.kind = kind;
  stack.cond = cond;
  stack.calibration_digest = digest;
  stack.layout = layout;
  auto coalescer = std::make_unique<BatchCoalescer>(
      make_cost_model(kind, tech_, cond, calibration, layout));
  stack.coalescer = coalescer.get();
  stack.cache = std::make_unique<CostCache>(std::move(coalescer));
  if (!opts_.cache_file.empty()) {
    stack.delta_path = strfmt("%s.serve-%08x", opts_.cache_file.c_str(),
                              config_hash(kind, cond, digest, layout));
    // The base memo carries ONE fingerprint; a mismatch just means it
    // belongs to a different configuration — skipped, never fatal.  Base
    // entries are marked imported so the shutdown flush writes only this
    // daemon's delta.
    std::error_code ec;
    std::string load_error;
    if (std::filesystem::exists(opts_.cache_file, ec)) {
      stack.base_loaded =
          stack.cache->load(opts_.cache_file, &load_error,
                            /*mark_imported=*/true);
    }
    if (std::filesystem::exists(stack.delta_path, ec)) {
      (void)stack.cache->load(stack.delta_path, &load_error,
                              /*mark_imported=*/false);
    }
  }
  // Entries present at seed time need no periodic re-flush; the first
  // forced (shutdown) flush still writes the delta unconditionally.
  stack.flushed_size = stack.cache->size();
  CostCache* raw = stack.cache.get();
  caches_.emplace(key, std::move(stack));
  return raw;
}

void ServeServer::flush_memos(bool force) {
  std::lock_guard<std::mutex> lock(caches_mu_);
  for (auto& [key, stack] : caches_) {
    (void)key;
    if (stack.delta_path.empty()) continue;
    // A periodic flush skips stacks that have not grown since their last
    // flush; save_delta always writes the full delta atomically, so a
    // grown stack's file is byte-identical to what a shutdown-only flush
    // would have written at the same entry set.
    if (!force && stack.cache->size() == stack.flushed_size) continue;
    std::string save_error;
    if (!stack.cache->save_delta(stack.delta_path, &save_error)) {
      std::fprintf(stderr, "[sega] warning: %s (serve memo flush)\n",
                   save_error.c_str());
      continue;
    }
    stack.flushed_size = stack.cache->size();
  }
}

Json ServeServer::status_json() const {
  Json s = Json::object();
  s["pid"] = static_cast<std::int64_t>(::getpid());
  s["socket"] = opts_.socket_path;
  if (!opts_.cache_file.empty()) s["memo_file"] = opts_.cache_file;

  Json b = Json::object();
  b["requests"] = broker_.requests();
  b["executions"] = broker_.executions();
  b["coalesced"] = broker_.coalesced();
  b["response_hits"] = broker_.response_hits();
  b["response_entries"] =
      static_cast<std::uint64_t>(broker_.response_entries());
  s["broker"] = b;

  Json caches = Json::array();
  {
    std::lock_guard<std::mutex> lock(caches_mu_);
    for (const auto& [key, stack] : caches_) {
      (void)key;
      Json c = Json::object();
      c["backend"] = cost_model_kind_name(stack.kind);
      c["supply_v"] = stack.cond.supply_v;
      c["input_sparsity"] = stack.cond.input_sparsity;
      c["activity"] = stack.cond.activity;
      if (!stack.calibration_digest.empty()) {
        c["calibration"] = stack.calibration_digest;
      }
      if (stack.layout) c["layout"] = true;
      c["entries"] = static_cast<std::uint64_t>(stack.cache->size());
      c["hits"] = stack.cache->hits();
      c["misses"] = stack.cache->misses();
      c["base_loaded"] = stack.base_loaded;
      if (!stack.delta_path.empty()) c["delta_file"] = stack.delta_path;
      c["coalescer"] = coalescer_json(*stack.coalescer);
      caches.push_back(std::move(c));
    }
  }
  s["caches"] = caches;

  std::size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& [id, session] : sessions_) {
      (void)id;
      if (!session->done.load()) ++live;
    }
  }
  s["connections"] = static_cast<std::uint64_t>(live);
  return s;
}

// --- the `serve` subcommand -------------------------------------------------

namespace {

volatile std::sig_atomic_t g_serve_signal = 0;

extern "C" void serve_signal_handler(int) { g_serve_signal = 1; }

}  // namespace

int run_serve_cli(const std::map<std::string, std::string>& flags,
                  std::ostream& out, std::ostream& err) {
  const std::string socket_path =
      flags.count("socket") ? flags.at("socket") : default_socket_path();
  if (flags.count("status") && flags.count("stop")) {
    err << "--status and --stop are mutually exclusive\n";
    return 2;
  }
  if (flags.count("status")) {
    std::string client_error;
    const auto status = daemon_status(socket_path, &client_error);
    if (!status) {
      err << client_error << "\n";
      return 1;
    }
    out << status->dump(2) << "\n";
    return 0;
  }
  if (flags.count("stop")) {
    std::string client_error;
    if (!daemon_shutdown(socket_path, &client_error)) {
      err << client_error << "\n";
      return 1;
    }
    out << "daemon at '" << socket_path << "' shutting down\n";
    return 0;
  }

  // Foreground daemon.
  Technology tech = Technology::tsmc28();
  if (flags.count("tech")) {
    std::ifstream in(flags.at("tech"));
    if (!in) {
      err << "cannot open techlib '" << flags.at("tech") << "'\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string parse_error;
    const auto parsed = parse_techlib(buf.str(), &parse_error);
    if (!parsed) {
      err << parse_error << "\n";
      return 2;
    }
    tech = *parsed;
  }
  ServeOptions opts;
  opts.socket_path = socket_path;
  if (flags.count("cache-file")) opts.cache_file = flags.at("cache-file");
  if (flags.count("calibration")) {
    // Fail-fast verification, not a default: a damaged artifact or one
    // fitted for a different model/technology aborts the daemon at startup
    // instead of failing every calibrated request at run time.  Conditions
    // vary per request, so the artifact is checked against its *own*
    // conditions; requests re-match theirs at cache_for time.
    opts.calibration_file = flags.at("calibration");
    std::string cal_error;
    const auto artifact = load_calibration(opts.calibration_file, &cal_error);
    if (!artifact ||
        !load_calibration_for(opts.calibration_file, tech,
                              artifact->conditions, &cal_error)) {
      err << cal_error << "\n";
      return 2;
    }
    err << strfmt("sega_dcim serve: calibration artifact '%s' verified "
                  "(digest %s)\n",
                  opts.calibration_file.c_str(),
                  artifact->digest().c_str());
  }
  if (flags.count("response-cache")) {
    long long entries = 0;
    try {
      entries = std::stoll(flags.at("response-cache"));
    } catch (...) {
      err << "bad numeric option value\n";
      return 2;
    }
    if (entries < 0) {
      err << "option value out of range\n";
      return 2;
    }
    opts.response_cache_entries = static_cast<std::size_t>(entries);
  }

  ServeServer server(std::move(tech), std::move(opts));
  std::string start_error;
  if (!server.start(&start_error)) {
    err << start_error << "\n";
    return 1;
  }

  g_serve_signal = 0;
  const auto old_int = std::signal(SIGINT, serve_signal_handler);
  const auto old_term = std::signal(SIGTERM, serve_signal_handler);
  err << strfmt("sega_dcim serve: listening on '%s' (pid %d)\n",
                server.socket_path().c_str(), static_cast<int>(::getpid()));
  server.wait([] { return g_serve_signal != 0; });
  err << "sega_dcim serve: draining\n";
  server.stop();
  std::signal(SIGINT, old_int);
  std::signal(SIGTERM, old_term);
  err << "sega_dcim serve: stopped\n";
  return 0;
}

}  // namespace sega
