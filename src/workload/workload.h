// NN workload descriptions — the "versatile applications" of Fig. 1
// (Transformer, CNN, GNN) that drive the compiler's user specifications.
//
// A workload is a set of weight-stationary GEMM layers (rows = reduction
// length K, cols = output channels); the mapping model in mapping.h reports
// how a candidate DCIM design executes it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/precision.h"

namespace sega {

struct LayerSpec {
  std::string name;
  std::int64_t rows = 0;  ///< reduction dimension (weights per output)
  std::int64_t cols = 0;  ///< output dimension

  std::int64_t weights() const { return rows * cols; }
  /// MACs to apply the layer to one input vector.
  std::int64_t macs_per_input() const { return rows * cols; }
};

struct Workload {
  std::string name;
  Precision precision;
  std::vector<LayerSpec> layers;

  std::int64_t total_weights() const;
  std::int64_t total_macs_per_input() const;
  /// Largest single layer (the unit the macro must tile).
  const LayerSpec& largest_layer() const;

  /// Smallest power-of-two Wstore holding the largest layer, clamped to
  /// [4K, 128K] (the paper's validated range).
  std::int64_t recommended_wstore() const;
};

/// Transformer encoder block projections (the Fig. 1 attention scenario):
/// Q/K/V/O projections (d_model x d_model) plus the two FFN GEMMs.
Workload make_transformer_block(std::int64_t d_model, std::int64_t ffn_mult,
                                const Precision& precision);

/// CNN backbone: conv layers lowered to GEMM (K = Cin*kh*kw, N = Cout).
struct ConvSpec {
  std::string name;
  std::int64_t cin = 0, cout = 0, kh = 3, kw = 3;
};
Workload make_cnn_backbone(const std::vector<ConvSpec>& convs,
                           const Precision& precision);

/// GNN aggregation + update (the Fig. 1 graph scenario): message GEMM
/// (feature x feature) and update GEMM per layer.
Workload make_gnn(std::int64_t feature_dim, int layer_count,
                  const Precision& precision);

}  // namespace sega
