// Mapping model: how a candidate DCIM design executes a workload.
//
// Weight-stationary execution: a layer of W_l weights runs in
// ceil(W_l / Wstore) passes; within a pass every stored weight is consumed
// over the L selection rounds, each round streaming one operand batch in
// ceil(Bx/k) cycles.  Weight reloads between passes are counted — they are
// precisely the memory-wall traffic DCIM exists to avoid, so designs whose
// Wstore undershoots the workload pay visibly.
#pragma once

#include "dse/explorer.h"
#include "workload/workload.h"

namespace sega {

struct LayerMapping {
  std::string layer;
  std::int64_t passes = 0;        ///< weight tiles
  std::int64_t weight_reloads = 0;///< passes - 1 (per input batch)
  double cycles = 0.0;            ///< compute cycles per input vector
  double latency_ns = 0.0;
  double energy_nj = 0.0;
  double effective_tops = 0.0;    ///< 2*MACs / latency
  double array_utilization = 0.0; ///< fraction of stored weights doing work
};

struct MappingReport {
  std::vector<LayerMapping> layers;
  double total_latency_ns = 0.0;
  double total_energy_nj = 0.0;
  double effective_tops = 0.0;
  double mean_utilization = 0.0;
};

/// Map @p workload onto @p design.  Precondition: matching precision.
MappingReport map_workload(const Workload& workload,
                           const EvaluatedDesign& design);

}  // namespace sega
