#include "workload/workload.h"

#include <algorithm>

#include "util/assert.h"
#include "util/math.h"
#include "util/strings.h"

namespace sega {

std::int64_t Workload::total_weights() const {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.weights();
  return total;
}

std::int64_t Workload::total_macs_per_input() const {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.macs_per_input();
  return total;
}

const LayerSpec& Workload::largest_layer() const {
  SEGA_EXPECTS(!layers.empty());
  return *std::max_element(layers.begin(), layers.end(),
                           [](const LayerSpec& a, const LayerSpec& b) {
                             return a.weights() < b.weights();
                           });
}

std::int64_t Workload::recommended_wstore() const {
  const std::int64_t biggest = largest_layer().weights();
  const std::int64_t clamped = std::clamp<std::int64_t>(biggest, 4096, 131072);
  return static_cast<std::int64_t>(
      next_pow2(static_cast<std::uint64_t>(clamped)));
}

Workload make_transformer_block(std::int64_t d_model, std::int64_t ffn_mult,
                                const Precision& precision) {
  SEGA_EXPECTS(d_model >= 1 && ffn_mult >= 1);
  Workload w;
  w.name = strfmt("transformer_d%lld", static_cast<long long>(d_model));
  w.precision = precision;
  for (const char* proj : {"q_proj", "k_proj", "v_proj", "o_proj"}) {
    w.layers.push_back({proj, d_model, d_model});
  }
  w.layers.push_back({"ffn_up", d_model, d_model * ffn_mult});
  w.layers.push_back({"ffn_down", d_model * ffn_mult, d_model});
  return w;
}

Workload make_cnn_backbone(const std::vector<ConvSpec>& convs,
                           const Precision& precision) {
  SEGA_EXPECTS(!convs.empty());
  Workload w;
  w.name = "cnn_backbone";
  w.precision = precision;
  for (const auto& c : convs) {
    SEGA_EXPECTS(c.cin >= 1 && c.cout >= 1 && c.kh >= 1 && c.kw >= 1);
    w.layers.push_back({c.name, c.cin * c.kh * c.kw, c.cout});
  }
  return w;
}

Workload make_gnn(std::int64_t feature_dim, int layer_count,
                  const Precision& precision) {
  SEGA_EXPECTS(feature_dim >= 1 && layer_count >= 1);
  Workload w;
  w.name = strfmt("gnn_f%lld", static_cast<long long>(feature_dim));
  w.precision = precision;
  for (int i = 0; i < layer_count; ++i) {
    w.layers.push_back(
        {strfmt("message_%d", i), feature_dim, feature_dim});
    w.layers.push_back({strfmt("update_%d", i), 2 * feature_dim, feature_dim});
  }
  return w;
}

}  // namespace sega
