#include "workload/mapping.h"

#include "util/assert.h"
#include "util/math.h"

namespace sega {

MappingReport map_workload(const Workload& workload,
                           const EvaluatedDesign& design) {
  SEGA_EXPECTS(workload.precision == design.point.precision);
  SEGA_EXPECTS(!workload.layers.empty());
  const DesignPoint& dp = design.point;
  const MacroMetrics& m = design.metrics;
  const std::int64_t wstore = dp.wstore();

  MappingReport report;
  double tops_weighted_macs = 0.0;
  for (const auto& layer : workload.layers) {
    LayerMapping lm;
    lm.layer = layer.name;
    lm.passes = static_cast<std::int64_t>(
        ceil_div(static_cast<std::uint64_t>(layer.weights()),
                 static_cast<std::uint64_t>(wstore)));
    lm.weight_reloads = lm.passes - 1;
    // One pass = L selection rounds x ceil(Bx/k) streaming cycles.
    const double cycles_per_pass =
        static_cast<double>(dp.l) * static_cast<double>(m.cycles_per_input);
    lm.cycles = static_cast<double>(lm.passes) * cycles_per_pass;
    lm.latency_ns = lm.cycles * m.delay_ns;
    lm.energy_nj = lm.cycles * m.energy_per_cycle_fj * 1e-6;
    const double macs = static_cast<double>(layer.macs_per_input());
    lm.effective_tops = 2.0 * macs / (lm.latency_ns * 1e-9) * 1e-12;
    lm.array_utilization =
        macs / (static_cast<double>(lm.passes) * static_cast<double>(wstore));
    report.total_latency_ns += lm.latency_ns;
    report.total_energy_nj += lm.energy_nj;
    report.mean_utilization += lm.array_utilization;
    tops_weighted_macs += macs;
    report.layers.push_back(std::move(lm));
  }
  report.mean_utilization /= static_cast<double>(report.layers.size());
  report.effective_tops =
      2.0 * tops_weighted_macs / (report.total_latency_ns * 1e-9) * 1e-12;
  return report;
}

}  // namespace sega
