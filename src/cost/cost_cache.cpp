#include "cost/cost_cache.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <utility>
#include <vector>

#include "cost/calibrate.h"
#include "cost/layout_cost.h"
#include "tech/techlib_parser.h"
#include "util/assert.h"
#include "util/strings.h"

namespace sega {

CostCache::CostCache(const Technology& tech, EvalConditions cond)
    : owned_(std::make_unique<AnalyticCostModel>(tech, cond)),
      model_(owned_.get()) {}

CostCache::CostCache(std::unique_ptr<const CostModel> model)
    : owned_(std::move(model)), model_(owned_.get()) {
  SEGA_EXPECTS(model_ != nullptr);
}

CostCache::CostCache(const CostModel& model) : model_(&model) {}

CostCache::Key CostCache::key_of(const DesignPoint& dp) {
  return Key(static_cast<int>(dp.arch), static_cast<int>(dp.precision.kind),
             dp.precision.int_bits, dp.precision.exp_bits,
             dp.precision.mant_bits, dp.n, dp.h, dp.l, dp.k,
             dp.signed_weights, dp.pipelined_tree);
}

std::size_t CostCache::shard_index_of(const Key& key) {
  // Cheap mix of the geometry coordinates; precision/arch vary little within
  // one run, so (n, h, l, k) carry the entropy.
  const auto n = static_cast<std::uint64_t>(std::get<5>(key));
  const auto h = static_cast<std::uint64_t>(std::get<6>(key));
  const auto l = static_cast<std::uint64_t>(std::get<7>(key));
  const auto k = static_cast<std::uint64_t>(std::get<8>(key));
  const std::uint64_t mixed =
      (n * 0x9E3779B97F4A7C15ull) ^ (h * 0xC2B2AE3D27D4EB4Full) ^
      (l * 0x165667B19E3779F9ull) ^ k;
  return mixed % kShards;
}

CostCache::Shard& CostCache::shard_of(const Key& key) const {
  return shards_[shard_index_of(key)];
}

MacroMetrics CostCache::evaluate(const DesignPoint& dp) const {
  MacroMetrics metrics;
  evaluate_batch(Span<const DesignPoint>(&dp, 1), Span<MacroMetrics>(&metrics, 1));
  return metrics;
}

void CostCache::evaluate_batch(Span<const DesignPoint> points,
                               Span<MacroMetrics> out) const {
  SEGA_EXPECTS(points.size() == out.size());
  if (points.empty()) return;

  // Phase 1 — classify under the shard locks.  An absent key is claimed with
  // a pending marker, so exactly one caller process-wide evaluates it; a key
  // pending on another caller (or earlier in this very batch) is parked for
  // phase 4.
  std::vector<Key> keys(points.size());
  std::vector<std::size_t> miss;
  std::vector<std::size_t> parked;
  std::uint64_t hit_count = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    keys[i] = key_of(points[i]);
    Shard& shard = shard_of(keys[i]);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] = shard.table.try_emplace(keys[i]);
    if (inserted) {
      miss.push_back(i);
    } else if (it->second.ready) {
      out[i] = it->second.metrics;
      ++hit_count;
    } else {
      parked.push_back(i);
    }
  }

  // Phase 2 — evaluate the cold remainder as one batch through the model.
  // If the model throws (a caller-provided implementation, or allocation
  // failure), the claims are unwound and waiters woken before rethrowing —
  // an abandoned pending marker would deadlock every later lookup of that
  // key.  Woken waiters observe the vanished entry and re-claim it
  // themselves (see phase 4), so the cache stays usable after the error.
  if (!miss.empty()) {
    std::vector<MacroMetrics> fresh(miss.size());
    try {
      std::vector<DesignPoint> cold;
      cold.reserve(miss.size());
      for (const std::size_t i : miss) cold.push_back(points[i]);
      model_->evaluate_batch(Span<const DesignPoint>(cold),
                             Span<MacroMetrics>(fresh));
    } catch (...) {
      for (const std::size_t i : miss) {
        Shard& shard = shard_of(keys[i]);
        {
          std::lock_guard<std::mutex> lock(shard.mu);
          const auto it = shard.table.find(keys[i]);
          if (it != shard.table.end() && !it->second.ready) {
            shard.table.erase(it);
          }
        }
        shard.cv.notify_all();
      }
      throw;
    }

    // Phase 3 — publish and wake parked requesters.
    for (std::size_t j = 0; j < miss.size(); ++j) {
      const std::size_t i = miss[j];
      out[i] = fresh[j];
      Shard& shard = shard_of(keys[i]);
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        Entry& entry = shard.table[keys[i]];
        entry.metrics = std::move(fresh[j]);
        entry.ready = true;
      }
      shard.cv.notify_all();
    }
    misses_.fetch_add(miss.size(), std::memory_order_relaxed);
  }

  // Phase 4 — collect keys another caller is computing.  Markers claimed by
  // this batch are already published (phase 3 runs first), so waiting here
  // is only ever on other threads' in-flight evaluations.  A key that
  // vanishes while parked means its claimer's model call threw: take over
  // the claim and evaluate it here (counted as a miss — it reaches the
  // model exactly once).
  for (const std::size_t i : parked) {
    Shard& shard = shard_of(keys[i]);
    std::unique_lock<std::mutex> lock(shard.mu);
    bool claimed = false;
    for (;;) {
      const auto it = shard.table.find(keys[i]);
      if (it == shard.table.end()) {
        shard.table.try_emplace(keys[i]);
        claimed = true;
        break;
      }
      if (it->second.ready) {
        out[i] = it->second.metrics;
        ++hit_count;
        break;
      }
      shard.cv.wait(lock);
    }
    if (!claimed) continue;
    lock.unlock();
    MacroMetrics metrics;
    try {
      metrics = model_->evaluate(points[i]);
    } catch (...) {
      {
        std::lock_guard<std::mutex> relock(shard.mu);
        const auto it = shard.table.find(keys[i]);
        if (it != shard.table.end() && !it->second.ready) {
          shard.table.erase(it);
        }
      }
      shard.cv.notify_all();
      throw;
    }
    out[i] = metrics;
    {
      std::lock_guard<std::mutex> relock(shard.mu);
      Entry& entry = shard.table[keys[i]];
      entry.metrics = std::move(metrics);
      entry.ready = true;
    }
    shard.cv.notify_all();
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  if (hit_count > 0) hits_.fetch_add(hit_count, std::memory_order_relaxed);
}

std::size_t CostCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.table) {
      if (entry.ready) ++total;
    }
  }
  return total;
}

void CostCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.table.clear();
  }
  hits_.store(0);
  misses_.store(0);
}

// ------------------------------------------------------------ persistence

namespace {

constexpr const char* kMemoMarker = "sega_cost_memo";

/// Serialize one table entry: the key fields positionally, the gate census,
/// the scalar metrics positionally, and the breakdown maps.  Doubles dump as
/// %.17g (util/json.cpp), which round-trips bit-exactly.
Json entry_line(
    const std::tuple<int, int, int, int, int, std::int64_t, std::int64_t,
                     std::int64_t, std::int64_t, bool, bool>& key,
    const MacroMetrics& m) {
  Json j = Json::object();
  Json k = Json::array();
  k.push_back(std::get<0>(key));
  k.push_back(std::get<1>(key));
  k.push_back(std::get<2>(key));
  k.push_back(std::get<3>(key));
  k.push_back(std::get<4>(key));
  k.push_back(std::get<5>(key));
  k.push_back(std::get<6>(key));
  k.push_back(std::get<7>(key));
  k.push_back(std::get<8>(key));
  k.push_back(std::get<9>(key));
  k.push_back(std::get<10>(key));
  j["k"] = std::move(k);
  Json g = Json::array();
  for (const std::int64_t count : m.gates.counts) g.push_back(count);
  j["g"] = std::move(g);
  Json v = Json::array();
  v.push_back(m.area_gates);
  v.push_back(m.delay_gates);
  v.push_back(m.energy_gates);
  v.push_back(m.area_um2);
  v.push_back(m.area_mm2);
  v.push_back(m.delay_ns);
  v.push_back(m.freq_ghz);
  v.push_back(m.energy_per_cycle_fj);
  v.push_back(m.power_w);
  v.push_back(m.energy_per_mvm_nj);
  v.push_back(m.throughput_tops);
  v.push_back(m.tops_per_w);
  v.push_back(m.tops_per_mm2);
  v.push_back(m.cycles_per_input);
  j["m"] = std::move(v);
  Json ab = Json::object();
  for (const auto& [name, value] : m.area_breakdown) ab[name] = value;
  j["ab"] = std::move(ab);
  Json eb = Json::object();
  for (const auto& [name, value] : m.energy_breakdown) eb[name] = value;
  j["eb"] = std::move(eb);
  // Line self-checksum: in-place corruption of any byte of the entry —
  // including a flipped digit that still parses — fails verification on
  // load and the line is skipped, never trusted.
  stamp_line_checksum(&j);
  return j;
}

bool json_array_of_numbers(const Json& j, std::size_t size) {
  if (!j.is_array() || j.size() != size) return false;
  for (std::size_t i = 0; i < j.size(); ++i) {
    if (!j.at(i).is_number()) return false;
  }
  return true;
}

bool parse_breakdown(const Json& j, std::map<std::string, double>* out) {
  if (!j.is_object()) return false;
  for (const auto& [name, value] : j.items()) {
    if (!value.is_number()) return false;
    (*out)[name] = value.as_number();
  }
  return true;
}

}  // namespace

bool CostCache::parse_memo_entry(const Json& parsed, Key* key,
                                 MacroMetrics* metrics) {
  if (!parsed.is_object() || !check_line_checksum(parsed) ||
      !parsed.contains("k") || !parsed.contains("g") ||
      !parsed.contains("m") || !parsed.contains("ab") ||
      !parsed.contains("eb")) {
    return false;
  }
  const Json& k = parsed.at("k");
  const Json& g = parsed.at("g");
  const Json& v = parsed.at("m");
  if (!k.is_array() || k.size() != 11 || !json_array_of_numbers(g, 8) ||
      !json_array_of_numbers(v, 14)) {
    return false;
  }
  for (std::size_t i = 0; i < 9; ++i) {
    if (!k.at(i).is_number()) return false;
  }
  if (!k.at(9).is_bool() || !k.at(10).is_bool()) return false;

  *key = Key(static_cast<int>(k.at(0).as_int()),
             static_cast<int>(k.at(1).as_int()),
             static_cast<int>(k.at(2).as_int()),
             static_cast<int>(k.at(3).as_int()),
             static_cast<int>(k.at(4).as_int()), k.at(5).as_int(),
             k.at(6).as_int(), k.at(7).as_int(), k.at(8).as_int(),
             k.at(9).as_bool(), k.at(10).as_bool());
  // The breakdown maps are validated even when the caller wants keys only —
  // a line compact_memo_files passes through must be a line load() accepts.
  MacroMetrics local;
  MacroMetrics& m = metrics ? *metrics : local;
  for (std::size_t i = 0; i < m.gates.counts.size(); ++i) {
    m.gates.counts[i] = g.at(i).as_int();
  }
  m.area_gates = v.at(0).as_number();
  m.delay_gates = v.at(1).as_number();
  m.energy_gates = v.at(2).as_number();
  m.area_um2 = v.at(3).as_number();
  m.area_mm2 = v.at(4).as_number();
  m.delay_ns = v.at(5).as_number();
  m.freq_ghz = v.at(6).as_number();
  m.energy_per_cycle_fj = v.at(7).as_number();
  m.power_w = v.at(8).as_number();
  m.energy_per_mvm_nj = v.at(9).as_number();
  m.throughput_tops = v.at(10).as_number();
  m.tops_per_w = v.at(11).as_number();
  m.tops_per_mm2 = v.at(12).as_number();
  m.cycles_per_input = v.at(13).as_int();
  return parse_breakdown(parsed.at("ab"), &m.area_breakdown) &&
         parse_breakdown(parsed.at("eb"), &m.energy_breakdown);
}

bool CostCache::compact_memo_files(const std::vector<std::string>& sources,
                                   const std::string& out_path,
                                   std::string* error, CompactStats* stats) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  CompactStats local_stats;
  CompactStats& st = stats ? *stats : local_stats;
  st = CompactStats{};

  // Pass 1 — fold every source line-at-a-time: verify headers against the
  // first file's, record each valid entry's key and byte extent, first
  // occurrence wins (sources are in priority order: base memo before
  // deltas, matching load()'s existing-entries-win merge).  Only keys and
  // extents are held — never metrics — so memory scales with the entry
  // *count*, not the file sizes.
  struct LineRef {
    std::size_t file;
    std::uint64_t offset;
    std::uint32_t length;
  };
  std::map<std::pair<std::size_t, Key>, LineRef> order;
  std::vector<std::unique_ptr<std::ifstream>> files;
  std::string header_text;  // first source's header line, copied verbatim
  std::optional<Json> header_json;
  for (const std::string& path : sources) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) continue;
    auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
    if (!*in) return fail(strfmt("cannot read cost cache '%s'", path.c_str()));
    const std::size_t file_idx = files.size();
    bool have_header = false;
    std::string line;
    for (;;) {
      const auto offset = static_cast<std::uint64_t>(in->tellg());
      if (!std::getline(*in, line)) break;
      if (trim(line).empty()) continue;
      const auto parsed = Json::parse(line);
      if (!have_header) {
        if (!parsed || !parsed->is_object() || !parsed->contains(kMemoMarker)) {
          return fail(strfmt("cost cache '%s' has a missing or malformed "
                             "header",
                             path.c_str()));
        }
        if (!header_json) {
          header_json = *parsed;
          header_text = line;
        } else if (!(*parsed == *header_json)) {
          return fail(strfmt(
              "cost cache '%s' was written under a different cost model, "
              "technology, conditions, or model version than the first "
              "source; refusing to merge",
              path.c_str()));
        }
        have_header = true;
        continue;
      }
      Key key;
      if (!parsed || !parse_memo_entry(*parsed, &key, nullptr)) {
        ++st.corrupt_lines;
        continue;
      }
      const bool inserted =
          order
              .try_emplace(std::make_pair(shard_index_of(key), key),
                           LineRef{file_idx, offset,
                                   static_cast<std::uint32_t>(line.size())})
              .second;
      if (!inserted) ++st.duplicates;
    }
    if (!have_header) {
      return fail(strfmt("cost cache '%s' has a missing or malformed header",
                         path.c_str()));
    }
    in->clear();  // getline drove the stream to EOF; seeks below must work
    files.push_back(std::move(in));
    ++st.files_merged;
  }
  if (!header_json) {
    return fail("memo-compact found none of the given memo files");
  }

  // Pass 2 — stream the winners out in save()'s canonical order (shard
  // bucket, then key), copying the original line bytes; writing to a
  // per-PID temp then renaming keeps the output atomic even when it
  // overwrites one of the sources.
  const std::string tmp =
      strfmt("%s.tmp.%d", out_path.c_str(), static_cast<int>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail(strfmt("cannot write cost cache '%s'", tmp.c_str()));
    out << header_text << '\n';
    std::string buf;
    for (const auto& [bucket_key, ref] : order) {
      std::ifstream& f = *files[ref.file];
      f.seekg(static_cast<std::streamoff>(ref.offset));
      buf.resize(ref.length);
      f.read(buf.data(), static_cast<std::streamsize>(ref.length));
      if (!f) {
        out.close();
        std::error_code cleanup_ec;
        std::filesystem::remove(tmp, cleanup_ec);
        return fail("memo-compact: re-reading a source line failed "
                    "(file changed mid-compact?)");
      }
      out << buf << '\n';
    }
    out.flush();
    if (!out) {
      std::error_code cleanup_ec;
      std::filesystem::remove(tmp, cleanup_ec);
      return fail(strfmt("write to cost cache '%s' failed", tmp.c_str()));
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, out_path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return fail(strfmt("cannot rename cost cache '%s' into place",
                       out_path.c_str()));
  }
  st.entries = order.size();
  return true;
}

Json CostCache::fingerprint_header() const {
  Json config = Json::object();
  config["techlib"] = write_techlib(model_->tech());
  const EvalConditions& cond = model_->conditions();
  config["supply_v"] = cond.supply_v;
  config["sparsity"] = cond.input_sparsity;
  config["activity"] = cond.activity;
  Json j = Json::object();
  j[kMemoMarker] = 1;
  // The backend identity is part of the fingerprint: an analytic memo and
  // an RTL-measured memo describe different quantities and must never be
  // loaded into each other's caches.
  j["model"] = model_->model_name();
  j["model_version"] = model_->model_version();
  j["config"] = std::move(config);
  // Calibration is model identity too: memos computed under a calibration
  // artifact carry its version+digest, uncalibrated memos carry no key at
  // all (keeping pre-calibration memo files byte-identical and loadable).
  // load()'s exact-header match then rejects both cross-contamination
  // directions for free.
  if (const auto cal = model_->calibration()) {
    j["calibration"] = cal->fingerprint();
  }
  // The layout/interconnect stage follows the same only-when-enabled rule:
  // layout-off memos carry no key (pre-existing files stay byte-identical),
  // layout-on memos carry the stage's formula version, and the exact-header
  // match rejects cross-loads in both directions.
  if (model_->layout_enabled()) {
    j["layout"] = kLayoutCostVersion;
  }
  return j;
}

bool CostCache::save(const std::string& path, std::string* error) const {
  return save_impl(path, error, /*delta_only=*/false);
}

bool CostCache::save_delta(const std::string& path, std::string* error) const {
  return save_impl(path, error, /*delta_only=*/true);
}

bool CostCache::save_impl(const std::string& path, std::string* error,
                          bool delta_only) const {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  // Snapshot under the shard locks (in shard/key order, so identical
  // contents serialize identically).
  std::string text = fingerprint_header().dump();
  text += '\n';
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.table) {
      if (!entry.ready) continue;
      if (delta_only && entry.imported) continue;
      text += entry_line(key, entry.metrics).dump();
      text += '\n';
    }
  }

  // Write-temp-then-rename: the file under the real name is always either
  // the previous complete memo or the new complete memo, never a torn write.
  // The temp name is per-process so concurrent savers of a shared cache file
  // cannot interleave into one temp and rename a torn mix into place (last
  // completed rename wins whole).
  const std::string tmp =
      strfmt("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return fail(strfmt("cannot write cost cache '%s'", tmp.c_str()));
    f << text;
    f.flush();
    if (!f) return fail(strfmt("write to cost cache '%s' failed", tmp.c_str()));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return fail(strfmt("cannot rename cost cache '%s' into place",
                       path.c_str()));
  }
  return true;
}

bool CostCache::load(const std::string& path, std::string* error,
                     bool mark_imported) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  std::ifstream in(path);
  if (!in) return fail(strfmt("cannot read cost cache '%s'", path.c_str()));

  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const auto parsed = Json::parse(line);
    if (!have_header) {
      // The header must identify a memo for exactly this model: same
      // formulas (version), same technology, same conditions.
      if (!parsed || !parsed->is_object() || !parsed->contains(kMemoMarker)) {
        return fail(strfmt("cost cache '%s' has a missing or malformed header",
                           path.c_str()));
      }
      if (!(*parsed == fingerprint_header())) {
        return fail(strfmt(
            "cost cache '%s' was written for a different cost model, "
            "technology, conditions, or model version; delete it or fix "
            "the spec",
            path.c_str()));
      }
      have_header = true;
      continue;
    }
    // Entry lines: tolerate truncated/corrupt lines (external corruption or
    // a partially copied file) by skipping them — a bad line must never
    // become a metric.  The checksum catches corruption that *stays*
    // parseable (a flipped digit inside a metric), not just structural
    // damage.
    if (!parsed) continue;
    Key key;
    MacroMetrics m;
    if (!parse_memo_entry(*parsed, &key, &m)) continue;

    // Merge: existing entries win (for a matching fingerprint the values are
    // identical anyway — the model is pure), and keep their imported flag —
    // provenance is first-load-wins.  With the sweep's load order (base
    // memo first, own shard second) an entry present in both files stays
    // imported and is deduped out of the next save_delta(): the base
    // already persists it.
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] = shard.table.try_emplace(key);
    if (inserted || !it->second.ready) {
      it->second.metrics = std::move(m);
      it->second.ready = true;
      it->second.imported = mark_imported;
    }
  }
  if (!have_header) {
    return fail(strfmt("cost cache '%s' has a missing or malformed header",
                       path.c_str()));
  }
  return true;
}

bool CostCache::load_shards(const std::string& base, int count,
                            std::string* error, int* merged) {
  SEGA_EXPECTS(count >= 1);
  if (merged) *merged = 0;
  for (int i = 0; i < count; ++i) {
    const std::string path = shard_file_path(base, i, count);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) continue;
    if (!load(path, error)) return false;
    if (merged) ++*merged;
  }
  return true;
}

}  // namespace sega
