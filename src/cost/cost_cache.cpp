#include "cost/cost_cache.h"

namespace sega {

CostCache::CostCache(const Technology& tech, EvalConditions cond)
    : tech_(&tech), cond_(cond) {}

CostCache::Key CostCache::key_of(const DesignPoint& dp) {
  return Key(static_cast<int>(dp.arch), static_cast<int>(dp.precision.kind),
             dp.precision.int_bits, dp.precision.exp_bits,
             dp.precision.mant_bits, dp.n, dp.h, dp.l, dp.k,
             dp.signed_weights, dp.pipelined_tree);
}

CostCache::Shard& CostCache::shard_of(const Key& key) {
  // Cheap mix of the geometry coordinates; precision/arch vary little within
  // one run, so (n, h, l, k) carry the entropy.
  const auto n = static_cast<std::uint64_t>(std::get<5>(key));
  const auto h = static_cast<std::uint64_t>(std::get<6>(key));
  const auto l = static_cast<std::uint64_t>(std::get<7>(key));
  const auto k = static_cast<std::uint64_t>(std::get<8>(key));
  const std::uint64_t mixed =
      (n * 0x9E3779B97F4A7C15ull) ^ (h * 0xC2B2AE3D27D4EB4Full) ^
      (l * 0x165667B19E3779F9ull) ^ k;
  return shards_[mixed % kShards];
}

MacroMetrics CostCache::evaluate(const DesignPoint& dp) {
  const Key key = key_of(dp);
  Shard& shard = shard_of(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Evaluate outside the lock: the model is pure, so a concurrent duplicate
  // evaluation of the same cold key is wasted work, never wrong results.
  MacroMetrics metrics = evaluate_macro(*tech_, dp, cond_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.table.emplace(key, metrics);
  }
  return metrics;
}

std::size_t CostCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.table.size();
  }
  return total;
}

void CostCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.table.clear();
  }
  hits_.store(0);
  misses_.store(0);
}

}  // namespace sega
