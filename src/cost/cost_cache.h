// Memoizing CostModel decorator with a persistent cross-process memo file.
//
// NSGA-II revisits the same genome many times across generations (elitism,
// crossover of similar parents, repair walks converging on the same decode),
// the multi-precision merge re-evaluates every front member, and repeated
// sweeps of overlapping grids revisit whole cells' worth of points.  The
// macro model is a pure function of (Technology, EvalConditions,
// DesignPoint), so one CostCache — wrapping a model bound to fixed
// technology and conditions — turns every repeated evaluation into a lookup,
// and its memo file carries that across processes.
//
// Thread safety: evaluate()/evaluate_batch() may be called concurrently from
// the DSE thread pool.  The table is sharded 16 ways to keep lock contention
// off the hot path.  Each distinct key is evaluated exactly once
// process-wide: the first requester claims the key with a pending marker and
// computes outside the lock; concurrent requesters of the same key park on
// the shard's condition variable and are woken when the result publishes.
// hits() and misses() are therefore exact — every lookup is exactly one of
// the two, hits() + misses() equals the number of points requested, and
// misses() equals the number of points the underlying model evaluated.
//
// Persistence: save() writes a versioned JSONL memo (header = model name +
// model version + technology + conditions fingerprint, one line per entry,
// doubles in %.17g so metrics round-trip bit-exactly) via
// write-temp-then-rename, so a crashed writer can never leave a
// half-written file under the real name.  Every entry line carries a
// self-checksum ("c", util/json.h) computed over the rest of the line, so
// in-place corruption — even a flipped digit that stays parseable JSON — is
// detected and the line skipped, never served as a metric.  load() merges a
// memo into the table (existing entries win; entries are identical for
// matching fingerprints anyway), rejects files written under a different
// fingerprint (different model backend included), and tolerates truncated
// or corrupt entry lines.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "cost/cost_model.h"
#include "util/json.h"

namespace sega {

class CostCache final : public CostModel {
 public:
  /// Convenience: cache over an owned AnalyticCostModel.  The cache keeps a
  /// pointer to @p tech; the technology must outlive it.
  explicit CostCache(const Technology& tech, EvalConditions cond = {});

  /// Cache over an owned model of any backend (make_cost_model) — the
  /// sweep/compile path for `--cost-model`.
  explicit CostCache(std::unique_ptr<const CostModel> model);

  /// Cache over a caller-provided model (e.g. an instrumented model in
  /// tests); @p model must outlive the cache.
  explicit CostCache(const CostModel& model);

  CostCache(const CostCache&) = delete;
  CostCache& operator=(const CostCache&) = delete;

  const Technology& tech() const override { return model_->tech(); }
  const EvalConditions& conditions() const override {
    return model_->conditions();
  }
  /// The cache is identity-transparent: memo fingerprints must describe the
  /// wrapped model, not the decorator.
  const char* model_name() const override { return model_->model_name(); }
  int model_version() const override { return model_->model_version(); }
  std::shared_ptr<const Calibration> calibration() const override {
    return model_->calibration();
  }
  bool layout_enabled() const override { return model_->layout_enabled(); }

  /// Cached evaluation of one design point.
  MacroMetrics evaluate(const DesignPoint& dp) const override;

  /// Cached batch evaluation: hits fill out[] directly, the cold remainder
  /// goes to the underlying model as one batch.
  void evaluate_batch(Span<const DesignPoint> points,
                      Span<MacroMetrics> out) const override;

  /// Number of distinct design points evaluated or loaded so far.
  std::size_t size() const;

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }

  /// Drop every entry and reset the counters.  Must not race evaluations.
  void clear();

  /// Write the memo file atomically (temp file + rename).  Returns false and
  /// sets *error (when given) on I/O failure.
  bool save(const std::string& path, std::string* error = nullptr) const;

  /// Like save(), but skips entries that were load()ed with
  /// mark_imported == true.  A sharded sweep worker seeds from the unified
  /// base memo (imported) plus its own shard (not imported) and saves the
  /// delta — its own contribution — so shard files don't each carry a full
  /// copy of the base and memo I/O stays base + K deltas, not (K+1) x base.
  bool save_delta(const std::string& path, std::string* error = nullptr) const;

  /// Merge a memo file into the table.  Returns false and sets *error on an
  /// unreadable file, a missing/malformed header, or a fingerprint mismatch
  /// (different technology, conditions, or cost-model version — a stale memo
  /// must never leak old numbers into new runs).  Truncated or corrupt entry
  /// lines are skipped; entries already in the table are kept (their
  /// imported flag too).  Loaded entries count as neither hits nor misses.
  /// @p mark_imported tags the entries this call adds as coming from a base
  /// memo some other file already persists — save_delta() omits them.
  bool load(const std::string& path, std::string* error = nullptr,
            bool mark_imported = false);

  /// Merge every existing per-worker memo shard of @p base —
  /// `<base>.shard-<i>-of-<count>` for i in [0, count), the files a sharded
  /// sweep's workers write — into the table.  A missing shard file is
  /// skipped, not an error: a worker whose cells were all recovered from its
  /// checkpoint never evaluates (or writes) anything.  An existing shard
  /// that fails to load (unreadable, malformed, fingerprint mismatch) is an
  /// error, same as load().  @p merged (when given) reports how many shard
  /// files were merged.
  bool load_shards(const std::string& base, int count,
                   std::string* error = nullptr, int* merged = nullptr);

  /// Statistics of one compact_memo_files run.
  struct CompactStats {
    int files_merged = 0;           ///< sources that existed and were read
    std::size_t entries = 0;        ///< deduplicated entries written
    std::size_t duplicates = 0;     ///< entries dropped as already present
    std::size_t corrupt_lines = 0;  ///< unparseable/bad-checksum lines skipped
  };

  /// Streamed merge of several memo files (a base memo plus its shard
  /// deltas — the `sega_dcim memo-compact` engine) into one deduplicated
  /// memo at @p out_path, written atomically.  Unlike load()+save(), no
  /// metrics are ever materialized: each source is folded line-at-a-time,
  /// only the entry *keys* (for first-wins dedup, earlier sources win) and
  /// per-line byte extents are held in memory, and the output is assembled
  /// by copying the winning lines verbatim in save()'s canonical
  /// shard-bucket/key order — so compacting files that save()/save_delta()
  /// wrote produces byte-identical output to loading them all into one
  /// cache and saving it.  Missing sources are skipped (at least one must
  /// exist); every source read must carry the same header fingerprint as
  /// the first (a mismatched file is an error — memos of different
  /// models/technologies/conditions must never be merged); corrupt entry
  /// lines are skipped and counted.  No model is needed: the fingerprint
  /// of record is the first source's header, copied through unchanged.
  static bool compact_memo_files(const std::vector<std::string>& sources,
                                 const std::string& out_path,
                                 std::string* error = nullptr,
                                 CompactStats* stats = nullptr);

 private:
  // Every cost-affecting field of DesignPoint, ordered.  (signed_weights is
  // census-identical by design but is still keyed — correctness over reuse.)
  using Key = std::tuple<int,           // arch
                         int,           // precision.kind
                         int, int, int, // int_bits, exp_bits, mant_bits
                         std::int64_t, std::int64_t, std::int64_t,
                         std::int64_t, // n, h, l, k
                         bool, bool>;  // signed_weights, pipelined_tree
  static Key key_of(const DesignPoint& dp);

  /// A slot in the table: claimed (pending) at first request, published
  /// (ready) once the model evaluation lands.  imported marks entries that
  /// arrived via load(..., mark_imported=true) — already persisted in a base
  /// memo, so save_delta() skips them.
  struct Entry {
    bool ready = false;
    bool imported = false;
    MacroMetrics metrics;
  };

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    std::map<Key, Entry> table;
  };
  /// The table bucket a key hashes to — also the major sort key of save()'s
  /// canonical serialization order, which compact_memo_files reproduces.
  static std::size_t shard_index_of(const Key& key);
  Shard& shard_of(const Key& key) const;

  /// Parse one memo entry line (already JSON-parsed) into its key and,
  /// when @p metrics is non-null, its metrics.  All structural validation —
  /// checksum, field shapes, types — runs either way; false means the line
  /// is corrupt and must be skipped.  Shared by load() (materializes
  /// metrics) and compact_memo_files() (keys only).
  static bool parse_memo_entry(const Json& parsed, Key* key,
                               MacroMetrics* metrics);

  /// Memo-file identity: model version + serialized technology + conditions.
  Json fingerprint_header() const;

  bool save_impl(const std::string& path, std::string* error,
                 bool delta_only) const;

  std::unique_ptr<const CostModel> owned_;
  const CostModel* model_;
  mutable Shard shards_[kShards];
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace sega
