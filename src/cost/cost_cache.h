// Memoizing front-end for evaluate_macro.
//
// NSGA-II revisits the same genome many times across generations (elitism,
// crossover of similar parents, repair walks converging on the same decode),
// and the multi-precision merge re-evaluates every front member.  The macro
// model is a pure function of (Technology, EvalConditions, DesignPoint), so
// one CostCache instance — bound to a fixed technology and conditions —
// makes every repeated evaluation a lookup.
//
// Thread safety: evaluate() may be called concurrently from the DSE thread
// pool.  The table is sharded 16 ways to keep lock contention off the hot
// path.  Under a race on a cold key the model may be evaluated twice, but
// both evaluations produce identical metrics (pure function), so the cache
// stays consistent and results stay deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>

#include "cost/macro_model.h"

namespace sega {

class CostCache {
 public:
  /// The cache keeps a pointer to @p tech; the technology must outlive it.
  explicit CostCache(const Technology& tech, EvalConditions cond = {});

  CostCache(const CostCache&) = delete;
  CostCache& operator=(const CostCache&) = delete;

  const Technology& tech() const { return *tech_; }
  const EvalConditions& conditions() const { return cond_; }

  /// Cached evaluate_macro(tech, dp, cond).
  MacroMetrics evaluate(const DesignPoint& dp);

  /// Number of distinct design points evaluated so far.
  std::size_t size() const;

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }

  void clear();

 private:
  // Every cost-affecting field of DesignPoint, ordered.  (signed_weights is
  // census-identical by design but is still keyed — correctness over reuse.)
  using Key = std::tuple<int,           // arch
                         int,           // precision.kind
                         int, int, int, // int_bits, exp_bits, mant_bits
                         std::int64_t, std::int64_t, std::int64_t,
                         std::int64_t, // n, h, l, k
                         bool, bool>;  // signed_weights, pipelined_tree
  static Key key_of(const DesignPoint& dp);

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::map<Key, MacroMetrics> table;
  };
  Shard& shard_of(const Key& key);

  const Technology* tech_;
  EvalConditions cond_;
  Shard shards_[kShards];
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace sega
