// BatchCoalescer — a CostModel decorator that merges small concurrent
// evaluate_batch() calls into shared batches on the wrapped model.
//
// In the `sega_dcim serve` daemon many unrelated clients evaluate design
// points through one warm CostCache at once.  The cache already guarantees
// each *distinct* point is computed at most once; what it cannot do is
// amortize per-batch overhead across callers — each session's cold
// remainder reaches the underlying model as its own (often tiny) batch,
// and the analytic backend's batched path (hoisted context, shared module
// memo, SoA metric derivation) pays its setup per call.  The coalescer is
// the admission queue under the cache: concurrently arriving small batches
// are funneled through a leader thread that drains every queued request
// into ONE call on the wrapped model, in the group-commit style — while the
// leader evaluates, new arrivals queue up and form the next combined batch.
//
// Large batches bypass the queue entirely and run concurrently on the
// caller's thread: the DSE pool already saturates the cores with big
// chunks, and funneling those through one leader would *serialize* healthy
// intra-request parallelism.  Coalescing therefore engages only below a
// size threshold — exactly the traffic shape (single-point repair walks,
// mostly-warm requests with a few cold stragglers) where per-batch overhead
// dominates.
//
// Determinism: the wrapped model is a pure function evaluated point-wise;
// batch composition and ordering cannot change any result.  Thread-safe by
// construction; safe to call concurrently with direct (bypass) batches.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cost/cost_model.h"

namespace sega {

class BatchCoalescer final : public CostModel {
 public:
  /// Batches of at least this many points bypass the queue and run on the
  /// calling thread.
  static constexpr std::size_t kDirectThreshold = 32;

  /// Wrap an owned model of any backend.
  explicit BatchCoalescer(std::unique_ptr<const CostModel> model);

  BatchCoalescer(const BatchCoalescer&) = delete;
  BatchCoalescer& operator=(const BatchCoalescer&) = delete;

  const Technology& tech() const override { return model_->tech(); }
  const EvalConditions& conditions() const override {
    return model_->conditions();
  }
  /// Identity-transparent, like CostCache: memo fingerprints must describe
  /// the wrapped model, not the decorator.
  const char* model_name() const override { return model_->model_name(); }
  int model_version() const override { return model_->model_version(); }
  std::shared_ptr<const Calibration> calibration() const override {
    return model_->calibration();
  }
  bool layout_enabled() const override { return model_->layout_enabled(); }

  MacroMetrics evaluate(const DesignPoint& dp) const override;
  void evaluate_batch(Span<const DesignPoint> points,
                      Span<MacroMetrics> out) const override;

  /// Counters (exact, monotonic) for the daemon's status report and tests.
  std::uint64_t tickets() const { return tickets_.load(); }       ///< queued (small) batches
  std::uint64_t direct_batches() const { return direct_.load(); } ///< bypassed (large) batches
  std::uint64_t inner_batches() const { return inner_.load(); }   ///< calls reaching the model from the queue
  std::uint64_t inner_points() const { return inner_points_.load(); }
  /// Largest combined batch a leader has handed to the model.
  std::size_t max_coalesced() const { return max_coalesced_.load(); }

 private:
  /// One caller's queued batch; done flips under mu_ when its results land.
  struct Ticket {
    const DesignPoint* points;
    MacroMetrics* out;
    std::size_t count;
    bool done = false;
  };

  std::unique_ptr<const CostModel> model_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::vector<Ticket*> queue_;
  mutable bool leader_active_ = false;

  mutable std::atomic<std::uint64_t> tickets_{0};
  mutable std::atomic<std::uint64_t> direct_{0};
  mutable std::atomic<std::uint64_t> inner_{0};
  mutable std::atomic<std::uint64_t> inner_points_{0};
  mutable std::atomic<std::size_t> max_coalesced_{0};
};

}  // namespace sega
