// EvalContext — the first stage of the layered evaluation engine.
//
// Everything the macro model derives from a (Technology, EvalConditions)
// pair alone is precomputed here once, hoisting it out of the per-point hot
// path: the absolute unit scales and the condition-dependent supply/
// activity/sparsity factors (the per-cell costs stay on the Technology —
// the census stage is conditions-independent and reads them there).  The
// conversion helpers apply the exact arithmetic of Technology::area_um2 /
// delay_ns / energy_fj — same operations, same order — so metrics derived
// through a context are bit-identical to the historical per-call path.
#pragma once

#include "tech/technology.h"

namespace sega {

class EvalContext {
 public:
  /// Validates the conditions once (the per-call preconditions of the
  /// Technology conversions) and captures every derived constant.  The
  /// context keeps a pointer to @p tech; the technology must outlive it.
  EvalContext(const Technology& tech, const EvalConditions& cond);

  const Technology& tech() const { return *tech_; }
  const EvalConditions& conditions() const { return cond_; }

  /// Absolute conversions — bit-identical to the Technology methods under
  /// this context's conditions (the factors below are the per-call
  /// intermediates of those methods, applied in the same order).
  double area_um2(double gate_units) const {
    return gate_units * area_um2_per_gate_;
  }
  double delay_ns(double gate_units) const {
    return gate_units * delay_ns_per_gate_ * v_scale_;
  }
  double energy_fj(double gate_units) const {
    return gate_units * energy_fj_per_gate_ * v2_ * activity_ *
           one_minus_sparsity_;
  }

 private:
  const Technology* tech_;
  EvalConditions cond_;
  double area_um2_per_gate_;
  double delay_ns_per_gate_;
  double energy_fj_per_gate_;
  double v_scale_;            ///< nominal_supply / supply (alpha-power delay)
  double v2_;                 ///< (supply / nominal_supply)^2 (dynamic energy)
  double activity_;           ///< datapath switching activity
  double one_minus_sparsity_; ///< fraction of input bits that toggle
};

}  // namespace sega
