#include "cost/gate_count.h"

#include "util/assert.h"
#include "util/strings.h"

namespace sega {

GateCount& GateCount::operator+=(const GateCount& other) {
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  return *this;
}

GateCount& GateCount::add_scaled(const GateCount& other, std::int64_t times) {
  SEGA_EXPECTS(times >= 0);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[i] += other.counts[i] * times;
  return *this;
}

double GateCount::area(const Technology& tech) const {
  double a = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    a += static_cast<double>(counts[i]) *
         tech.cell(static_cast<CellKind>(i)).area;
  }
  return a;
}

double GateCount::energy(const Technology& tech) const {
  double e = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    e += static_cast<double>(counts[i]) *
         tech.cell(static_cast<CellKind>(i)).energy;
  }
  return e;
}

std::int64_t GateCount::total() const {
  std::int64_t t = 0;
  for (const auto c : counts) t += c;
  return t;
}

std::string GateCount::to_string() const {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += strfmt("%s:%lld", cell_kind_name(static_cast<CellKind>(i)),
                  static_cast<long long>(counts[i]));
  }
  return out + "}";
}

}  // namespace sega
