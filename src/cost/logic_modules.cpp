#include "cost/logic_modules.h"

#include <algorithm>

#include "util/assert.h"
#include "util/math.h"

namespace sega {

ModuleCost& ModuleCost::operator+=(const ModuleCost& other) {
  return add_series(other);
}

ModuleCost& ModuleCost::add_parallel(const ModuleCost& other,
                                     std::int64_t times) {
  SEGA_EXPECTS(times >= 0);
  gates.add_scaled(other.gates, times);
  area += other.area * static_cast<double>(times);
  energy += other.energy * static_cast<double>(times);
  if (times > 0) delay = std::max(delay, other.delay);
  return *this;
}

ModuleCost& ModuleCost::add_series(const ModuleCost& other,
                                   std::int64_t times) {
  SEGA_EXPECTS(times >= 0);
  gates.add_scaled(other.gates, times);
  area += other.area * static_cast<double>(times);
  energy += other.energy * static_cast<double>(times);
  delay += other.delay * static_cast<double>(times);
  return *this;
}

ModuleCost mul_cost(const Technology& tech, int n) {
  SEGA_EXPECTS(n >= 1);
  const CellCost& nor = tech.cell(CellKind::kNor);
  ModuleCost m;
  m.gates[CellKind::kNor] = n;
  m.area = n * nor.area;
  m.delay = nor.delay;
  m.energy = n * nor.energy;
  return m;
}

ModuleCost add_cost(const Technology& tech, int n) {
  SEGA_EXPECTS(n >= 1);
  const CellCost& fa = tech.cell(CellKind::kFa);
  const CellCost& ha = tech.cell(CellKind::kHa);
  ModuleCost m;
  m.gates[CellKind::kFa] = n - 1;
  m.gates[CellKind::kHa] = 1;
  m.area = (n - 1) * fa.area + ha.area;
  m.delay = (n - 1) * fa.delay + ha.delay;
  m.energy = (n - 1) * fa.energy + ha.energy;
  return m;
}

ModuleCost sel_cost(const Technology& tech, int n) {
  SEGA_EXPECTS(n >= 1);
  const CellCost& mux = tech.cell(CellKind::kMux2);
  ModuleCost m;
  m.gates[CellKind::kMux2] = n - 1;
  m.area = (n - 1) * mux.area;
  m.delay = ceil_log2(static_cast<std::uint64_t>(n)) * mux.delay;
  m.energy = (n - 1) * mux.energy;
  return m;
}

ModuleCost shift_cost(const Technology& tech, int n) {
  SEGA_EXPECTS(n >= 1);
  const ModuleCost sel = sel_cost(tech, n);
  ModuleCost m;
  m.gates.add_scaled(sel.gates, n);
  m.area = n * sel.area;
  // Paper Table II as printed: D_shift(N) = log2(N) * D_sel(N).
  m.delay = ceil_log2(static_cast<std::uint64_t>(n)) * sel.delay;
  m.energy = n * sel.energy;
  return m;
}

ModuleCost comp_cost(const Technology& tech, int n) { return add_cost(tech, n); }

}  // namespace sega
