#include "cost/calibrate.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "tech/techlib_parser.h"
#include "util/assert.h"
#include "util/strings.h"

namespace sega {

namespace {

std::uint32_t fnv1a32(const std::string& bytes) {
  std::uint32_t hash = 2166136261u;  // FNV-1a offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 16777619u;  // FNV prime
  }
  return hash;
}

/// Canonical corpus order (sort-before-solve): the cost-affecting design
/// point fields, in CostCache-key order.
auto point_order_key(const DesignPoint& dp) {
  return std::make_tuple(static_cast<int>(dp.arch),
                         static_cast<int>(dp.precision.kind),
                         dp.precision.int_bits, dp.precision.exp_bits,
                         dp.precision.mant_bits, dp.n, dp.h, dp.l, dp.k,
                         dp.signed_weights, dp.pipelined_tree);
}

bool finite(double v) { return std::isfinite(v); }

}  // namespace

// ----------------------------------------------------------- least squares

std::vector<double> least_squares_fit(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& y) {
  const auto fail = [](const std::string& msg) -> std::vector<double> {
    throw std::runtime_error("least_squares_fit: " + msg);
  };
  const std::size_t m = rows.size();
  if (m == 0) return fail("empty system (no observations)");
  const std::size_t n = rows[0].size();
  if (n == 0) return fail("empty system (no coefficients)");
  if (y.size() != m) {
    return fail(strfmt("observation/target count mismatch (%zu rows, %zu "
                       "targets)",
                       m, y.size()));
  }
  for (const auto& row : rows) {
    if (row.size() != n) return fail("ragged system (unequal row widths)");
    for (const double v : row) {
      if (!finite(v)) return fail("non-finite coefficient");
    }
  }
  for (const double v : y) {
    if (!finite(v)) return fail("non-finite target");
  }
  if (m < n) {
    return fail(strfmt("rank-deficient system: %zu observation(s) for %zu "
                       "coefficient(s)",
                       m, n));
  }

  // Column scaling: divide each column by its max |entry| so the normal
  // matrix is O(1)-conditioned in scale and the pivot tolerance is
  // meaningful across wildly different units.
  std::vector<double> scale(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      scale[j] = std::max(scale[j], std::fabs(rows[i][j]));
    }
    if (scale[j] == 0.0) {
      return fail(strfmt("rank-deficient system: column %zu is identically "
                         "zero",
                         j));
    }
  }

  // Normal equations on the scaled columns: N x' = r with
  // N = B^T B, r = B^T y, B_ij = A_ij / scale[j]; fixed accumulation order.
  std::vector<std::vector<double>> normal(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t l = 0; l < n; ++l) {
      double acc = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        acc += (rows[i][j] / scale[j]) * (rows[i][l] / scale[l]);
      }
      normal[j][l] = acc;
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      acc += (rows[i][j] / scale[j]) * y[i];
    }
    normal[j][n] = acc;
  }

  // Pivot tolerance relative to the largest normal-matrix entry: a genuinely
  // collinear system leaves pivots at rounding-noise level, many orders
  // below this.
  double largest = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t l = 0; l < n; ++l) {
      largest = std::max(largest, std::fabs(normal[j][l]));
    }
  }
  const double tolerance = 1e-9 * std::max(1.0, largest);

  // Gaussian elimination with partial pivoting.
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::fabs(normal[r][k]) > std::fabs(normal[pivot][k])) pivot = r;
    }
    if (std::fabs(normal[pivot][k]) <= tolerance) {
      return fail(strfmt("rank-deficient system: pivot %g below tolerance "
                         "at column %zu (collinear coefficients)",
                         std::fabs(normal[pivot][k]), k));
    }
    if (pivot != k) std::swap(normal[pivot], normal[k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = normal[r][k] / normal[k][k];
      for (std::size_t c = k; c <= n; ++c) {
        normal[r][c] -= factor * normal[k][c];
      }
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    double acc = normal[k][n];
    for (std::size_t c = k + 1; c < n; ++c) acc -= normal[k][c] * x[c];
    x[k] = acc / normal[k][k];
  }
  for (std::size_t j = 0; j < n; ++j) {
    x[j] /= scale[j];
    if (!finite(x[j])) return fail("solution is not finite");
  }
  return x;
}

// ------------------------------------------------- calibrated derivation

MacroMetrics derive_metrics_calibrated(const EvalContext& ctx,
                                       const MacroCensus& census,
                                       const CostedMacro& costed,
                                       const Calibration& cal) {
  MacroMetrics m;
  m.gates = costed.gates;

  // Module factors fold in per census part, in the exact accumulation order
  // of cost_components — with the identity Calibration every multiply is
  // by 1.0, so the result is bit-identical to the uncalibrated path.
  double area_g = 0.0;
  double energy_g = 0.0;
  for (int i = 0; i < census.part_count; ++i) {
    const ComponentUse& use = census.parts[static_cast<std::size_t>(i)];
    const auto slot = static_cast<std::size_t>(use.component);
    const double area = use.unit.area * static_cast<double>(use.copies);
    const double energy = use.unit.energy * static_cast<double>(use.copies) *
                          use.energy_mul / use.energy_div;
    area_g += cal.area_factor[slot] * area;
    energy_g += cal.energy_factor[slot] * energy;
  }
  const double delay_g = std::max(
      {census.array_path_delay, census.accu_delay, census.fusion_delay});
  m.area_gates = cal.area_scale * area_g;
  m.energy_gates = cal.energy_scale * energy_g;
  m.delay_gates = cal.delay_scale * delay_g;
  for (int i = 0; i < kMacroComponentCount; ++i) {
    const auto slot = static_cast<std::size_t>(i);
    if (!costed.present[slot]) continue;
    const char* key = macro_component_name(static_cast<MacroComponent>(i));
    m.area_breakdown[key] =
        cal.area_scale * (cal.area_factor[slot] * costed.area_by[slot]);
    m.energy_breakdown[key] =
        cal.energy_scale * (cal.energy_factor[slot] * costed.energy_by[slot]);
  }
  m.cycles_per_input = census.cycles;

  // Per-metric scales apply as one trailing multiply per headline metric
  // (metric == scale * unscaled_metric bit-exactly — the fitter's envelope
  // guard relies on this).
  m.area_um2 = cal.area_scale * ctx.area_um2(area_g);
  m.area_mm2 = cal.area_scale * (ctx.area_um2(area_g) * 1e-6);
  const double delay_raw = ctx.delay_ns(delay_g);
  m.delay_ns = cal.delay_scale * delay_raw;
  SEGA_ASSERT(m.delay_ns > 0.0);
  m.freq_ghz = 1.0 / m.delay_ns;
  const double cycle_raw = ctx.energy_fj(energy_g);
  m.energy_per_cycle_fj = cal.energy_scale * cycle_raw;
  m.energy_per_mvm_nj =
      cal.energy_scale *
      (cycle_raw * static_cast<double>(m.cycles_per_input) * 1e-6);
  m.power_w = m.energy_per_cycle_fj * 1e-15 / (m.delay_ns * 1e-9);
  const double macs_per_cycle =
      static_cast<double>(census.n) * static_cast<double>(census.h) /
      (static_cast<double>(census.bw) *
       static_cast<double>(m.cycles_per_input));
  const double ops_per_s = 2.0 * macs_per_cycle / (m.delay_ns * 1e-9);
  m.throughput_tops = cal.throughput_scale * (ops_per_s * 1e-12);
  m.tops_per_w = m.throughput_tops / m.power_w;
  m.tops_per_mm2 = m.throughput_tops / m.area_mm2;
  return m;
}

// ------------------------------------------------------------------ fitting

namespace {

/// Evaluate every corpus point through the calibrated derivation, in corpus
/// order — exactly what a calibrated AnalyticCostModel will later produce.
std::vector<MacroMetrics> evaluate_corpus(
    const EvalContext& ctx, const Technology& tech,
    const std::vector<CalibrationSample>& corpus, const Calibration& cal) {
  std::vector<MacroMetrics> out;
  out.reserve(corpus.size());
  for (const auto& sample : corpus) {
    const MacroCensus census = census_macro(tech, sample.point);
    out.push_back(
        derive_metrics_calibrated(ctx, census, cost_components(census), cal));
  }
  return out;
}

/// max_i |measured_i - predicted_i| / |predicted_i| — the validate rel-err
/// envelope of a corpus against one predicted-metric column.
double envelope(const std::vector<double>& predicted,
                const std::vector<double>& measured) {
  double env = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    env = std::max(env, std::fabs(measured[i] - predicted[i]) /
                            std::fabs(predicted[i]));
  }
  return env;
}

/// Minimax-center scale of measured/predicted: s = (rho_min + rho_max) / 2.
/// For positive ratios the rescaled envelope (b-a)/(a+b) provably never
/// exceeds the unscaled one max(b-1, 1-a).
double minimax_scale(const std::vector<double>& predicted,
                     const std::vector<double>& measured) {
  double lo = measured[0] / predicted[0];
  double hi = lo;
  for (std::size_t i = 1; i < predicted.size(); ++i) {
    const double rho = measured[i] / predicted[i];
    lo = std::min(lo, rho);
    hi = std::max(hi, rho);
  }
  return (lo + hi) / 2.0;
}

std::vector<double> scaled(const std::vector<double>& values, double s) {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = s * values[i];
  return out;
}

std::vector<double> metric_column(const std::vector<MacroMetrics>& metrics,
                                  double MacroMetrics::*field) {
  std::vector<double> out(metrics.size());
  for (std::size_t i = 0; i < metrics.size(); ++i) out[i] = metrics[i].*field;
  return out;
}

}  // namespace

std::optional<Calibration> fit_calibration(
    const Technology& tech, const EvalConditions& cond,
    std::vector<CalibrationSample> corpus, std::string* error,
    std::map<std::string, CalibrationMetricFit>* fit_report) {
  const auto fail = [&](const std::string& msg) -> std::optional<Calibration> {
    if (error) *error = "fit_calibration: " + msg;
    return std::nullopt;
  };
  if (corpus.empty()) return fail("calibration corpus is empty");

  // Sort-before-solve: the fit is a pure function of the corpus *set*,
  // independent of arrival order (and of the thread count that produced it).
  std::sort(corpus.begin(), corpus.end(),
            [](const CalibrationSample& a, const CalibrationSample& b) {
              return point_order_key(a.point) < point_order_key(b.point);
            });
  std::size_t distinct = 1;
  for (std::size_t i = 1; i < corpus.size(); ++i) {
    if (!(corpus[i].point == corpus[i - 1].point)) ++distinct;
  }
  if (distinct < 2) {
    return fail(strfmt("rank-deficient corpus: %zu distinct design point(s), "
                       "need at least 2",
                       distinct));
  }
  for (const auto& sample : corpus) {
    const MacroMetrics& mm = sample.measured;
    for (const double v : {mm.area_mm2, mm.delay_ns, mm.energy_per_mvm_nj,
                           mm.throughput_tops}) {
      if (!finite(v) || v <= 0.0) {
        return fail(strfmt("non-finite or non-positive measured metrics for "
                           "%s",
                           sample.point.to_string().c_str()));
      }
    }
    for (const auto* breakdown :
         {&mm.area_breakdown, &mm.energy_breakdown}) {
      for (const auto& [key, value] : *breakdown) {
        if (!finite(value)) {
          return fail(strfmt("non-finite measured breakdown '%s' for %s",
                             key.c_str(), sample.point.to_string().c_str()));
        }
      }
    }
  }

  const EvalContext ctx(tech, cond);
  Calibration cal;
  cal.model = "analytic";
  cal.model_version = kCostModelVersion;
  cal.techlib = write_techlib(tech);
  cal.conditions = cond;
  cal.corpus_size = static_cast<std::int64_t>(corpus.size());

  // The uncalibrated reference column per point — the exact metrics the
  // uncalibrated model serves, so the before-envelopes match validate's.
  const std::vector<MacroMetrics> uncal =
      evaluate_corpus(ctx, tech, corpus, Calibration());

  // --- 1. per-module factors: independent one-column least squares of the
  // measured breakdown against the analytic one.  Diagonal by construction,
  // so the default 3-knee corpus stays full rank; a module with no usable
  // signal keeps factor 1.0.
  for (int comp = 0; comp < kMacroComponentCount; ++comp) {
    const char* key = macro_component_name(static_cast<MacroComponent>(comp));
    for (const bool is_area : {true, false}) {
      std::vector<std::vector<double>> rows;
      std::vector<double> targets;
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        const auto& analytic_bd = is_area ? uncal[i].area_breakdown
                                          : uncal[i].energy_breakdown;
        const auto& measured_bd = is_area ? corpus[i].measured.area_breakdown
                                          : corpus[i].measured.energy_breakdown;
        const auto analytic_it = analytic_bd.find(key);
        const auto measured_it = measured_bd.find(key);
        if (analytic_it == analytic_bd.end() ||
            measured_it == measured_bd.end() || analytic_it->second == 0.0) {
          continue;
        }
        rows.push_back({analytic_it->second});
        targets.push_back(measured_it->second);
      }
      if (rows.empty()) continue;
      double factor = 1.0;
      try {
        factor = least_squares_fit(rows, targets)[0];
      } catch (const std::runtime_error& e) {
        return fail(strfmt("module '%s' %s fit failed: %s", key,
                           is_area ? "area" : "energy", e.what()));
      }
      // A non-positive factor would zero or negate a component; no
      // measured breakdown justifies that — keep the identity and let the
      // metric scale absorb the offset.
      if (!finite(factor) || factor <= 0.0) factor = 1.0;
      const auto slot = static_cast<std::size_t>(comp);
      (is_area ? cal.area_factor[slot] : cal.energy_factor[slot]) = factor;
    }
  }

  // --- 2. per-metric minimax scales, each followed by the envelope guard:
  // re-evaluate through the exact calibrated path and, if the envelope
  // widened versus uncalibrated, fall back (module factors to identity,
  // rescale; ultimately scale 1.0, which matches uncalibrated bit-exactly).
  std::map<std::string, CalibrationMetricFit> report;

  const auto fit_scaled_metric = [&](const char* name,
                                     double MacroMetrics::*field,
                                     double* scale_slot,
                                     std::array<double, kMacroComponentCount>*
                                         factors) {
    const std::vector<double> measured = [&] {
      std::vector<double> out(corpus.size());
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        out[i] = corpus[i].measured.*field;
      }
      return out;
    }();
    CalibrationMetricFit fit;
    fit.envelope_before = envelope(metric_column(uncal, field), measured);

    std::vector<double> predicted =
        metric_column(evaluate_corpus(ctx, tech, corpus, cal), field);
    *scale_slot = minimax_scale(predicted, measured);
    fit.envelope_after = envelope(scaled(predicted, *scale_slot), measured);
    if (fit.envelope_after > fit.envelope_before && factors != nullptr) {
      // The module factors hurt this metric; retry on the identity column.
      factors->fill(1.0);
      fit.module_factors_kept = false;
      predicted = metric_column(evaluate_corpus(ctx, tech, corpus, cal), field);
      *scale_slot = minimax_scale(predicted, measured);
      fit.envelope_after = envelope(scaled(predicted, *scale_slot), measured);
    }
    if (fit.envelope_after > fit.envelope_before) {
      *scale_slot = 1.0;  // bit-exact fallback: after == before
      fit.envelope_after = fit.envelope_before;
    }
    fit.scale = *scale_slot;
    report[name] = fit;
  };

  fit_scaled_metric("area", &MacroMetrics::area_mm2, &cal.area_scale,
                    &cal.area_factor);
  fit_scaled_metric("energy", &MacroMetrics::energy_per_mvm_nj,
                    &cal.energy_scale, &cal.energy_factor);
  fit_scaled_metric("delay", &MacroMetrics::delay_ns, &cal.delay_scale,
                    nullptr);

  // Throughput rides on the calibrated delay (tops == throughput_scale *
  // 2*MACs/delay), so its scale fits against the delay-calibrated column; if
  // even that widens the envelope, drop the delay scale too — throughput
  // then fits against the bit-exact uncalibrated column and the minimax
  // theorem applies directly.
  {
    const std::vector<double> measured = [&] {
      std::vector<double> out(corpus.size());
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        out[i] = corpus[i].measured.throughput_tops;
      }
      return out;
    }();
    CalibrationMetricFit fit;
    fit.envelope_before =
        envelope(metric_column(uncal, &MacroMetrics::throughput_tops),
                 measured);
    std::vector<double> predicted = metric_column(
        evaluate_corpus(ctx, tech, corpus, cal), &MacroMetrics::throughput_tops);
    cal.throughput_scale = minimax_scale(predicted, measured);
    fit.envelope_after =
        envelope(scaled(predicted, cal.throughput_scale), measured);
    if (fit.envelope_after > fit.envelope_before) {
      cal.delay_scale = 1.0;
      report["delay"].scale = 1.0;
      report["delay"].envelope_after = report["delay"].envelope_before;
      predicted = metric_column(evaluate_corpus(ctx, tech, corpus, cal),
                                &MacroMetrics::throughput_tops);
      cal.throughput_scale = minimax_scale(predicted, measured);
      fit.envelope_after =
          envelope(scaled(predicted, cal.throughput_scale), measured);
    }
    if (fit.envelope_after > fit.envelope_before) {
      cal.throughput_scale = 1.0;
      fit.envelope_after = fit.envelope_before;
    }
    fit.scale = cal.throughput_scale;
    report["throughput"] = fit;
  }

  for (const auto& [name, fit] : report) {
    SEGA_ASSERT(fit.envelope_after <= fit.envelope_before);
    if (!finite(fit.scale) || fit.scale <= 0.0) {
      return fail(strfmt("fitted %s scale is not a positive finite number",
                         name.c_str()));
    }
  }
  if (fit_report) *fit_report = std::move(report);
  return cal;
}

// ----------------------------------------------------------------- artifact

std::string Calibration::serialize() const {
  std::string out;
  Json header = Json::object();
  header["sega_calibration"] = format_version;
  header["model"] = model;
  header["model_version"] = model_version;
  Json config = Json::object();
  config["techlib"] = techlib;
  config["supply_v"] = conditions.supply_v;
  config["sparsity"] = conditions.input_sparsity;
  config["activity"] = conditions.activity;
  header["config"] = std::move(config);
  header["corpus_size"] = corpus_size;
  stamp_line_checksum(&header);
  out += header.dump() + "\n";
  for (int i = 0; i < kMacroComponentCount; ++i) {
    const auto slot = static_cast<std::size_t>(i);
    Json line = Json::object();
    line["module"] = macro_component_name(static_cast<MacroComponent>(i));
    line["area_factor"] = area_factor[slot];
    line["energy_factor"] = energy_factor[slot];
    stamp_line_checksum(&line);
    out += line.dump() + "\n";
  }
  Json scales_line = Json::object();
  Json scales = Json::object();
  scales["area"] = area_scale;
  scales["delay"] = delay_scale;
  scales["energy"] = energy_scale;
  scales["throughput"] = throughput_scale;
  scales_line["scales"] = std::move(scales);
  stamp_line_checksum(&scales_line);
  out += scales_line.dump() + "\n";
  return out;
}

std::string Calibration::digest() const {
  return strfmt("%08x", fnv1a32(serialize()));
}

Json Calibration::fingerprint() const {
  Json j = Json::object();
  j["version"] = format_version;
  j["digest"] = digest();
  return j;
}

bool Calibration::operator==(const Calibration& other) const {
  return serialize() == other.serialize();
}

bool save_calibration(const Calibration& cal, const std::string& path,
                      std::string* error) {
  const std::string temp = strfmt("%s.tmp.%d", path.c_str(),
                                  static_cast<int>(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error) *error = strfmt("cannot write calibration artifact '%s'",
                                 temp.c_str());
      return false;
    }
    out << cal.serialize();
    out.flush();
    if (!out) {
      if (error) *error = strfmt("cannot write calibration artifact '%s'",
                                 temp.c_str());
      std::remove(temp.c_str());
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    if (error) {
      *error = strfmt("cannot move calibration artifact into place at '%s': "
                      "%s",
                      path.c_str(), ec.message().c_str());
    }
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

namespace {

/// True iff @p line has exactly the keys in @p keys plus "c".
bool has_exact_keys(const Json& line, std::initializer_list<const char*> keys) {
  std::size_t expected = 1;  // "c"
  if (!line.contains("c")) return false;
  for (const char* key : keys) {
    if (!line.contains(key)) return false;
    ++expected;
  }
  return line.items().size() == expected;
}

bool positive_finite_number(const Json& v) {
  return v.is_number() && std::isfinite(v.as_number()) && v.as_number() > 0.0;
}

}  // namespace

std::optional<Calibration> load_calibration(const std::string& path,
                                            std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::optional<Calibration> {
    if (error) {
      *error = strfmt("calibration artifact '%s': %s", path.c_str(),
                      msg.c_str());
    }
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open");

  std::vector<Json> lines;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (trim(raw).empty()) continue;
    auto parsed = Json::parse(raw);
    if (!parsed || !parsed->is_object()) {
      return fail(strfmt("malformed JSON on line %zu", line_no));
    }
    if (!check_line_checksum(*parsed)) {
      return fail(strfmt("checksum mismatch on line %zu (corrupt artifact)",
                         line_no));
    }
    lines.push_back(std::move(*parsed));
  }
  if (lines.empty()) return fail("empty file (missing header)");

  // --- header ---------------------------------------------------------------
  const Json& header = lines[0];
  if (!header.contains("sega_calibration") ||
      !header.at("sega_calibration").is_number()) {
    return fail("missing or malformed header (no sega_calibration marker)");
  }
  if (!has_exact_keys(header, {"sega_calibration", "model", "model_version",
                               "config", "corpus_size"})) {
    return fail("malformed header (unexpected field set)");
  }
  Calibration cal;
  cal.format_version =
      static_cast<int>(header.at("sega_calibration").as_int());
  if (cal.format_version != kCalibrationFormatVersion) {
    return fail(strfmt("unsupported format version %d (this build reads "
                       "version %d)",
                       cal.format_version, kCalibrationFormatVersion));
  }
  if (!header.at("model").is_string() ||
      !header.at("model_version").is_number() ||
      !header.at("corpus_size").is_number() ||
      !header.at("config").is_object()) {
    return fail("malformed header field types");
  }
  const Json& config = header.at("config");
  if (!config.contains("techlib") || !config.at("techlib").is_string() ||
      !config.contains("supply_v") || !config.at("supply_v").is_number() ||
      !config.contains("sparsity") || !config.at("sparsity").is_number() ||
      !config.contains("activity") || !config.at("activity").is_number() ||
      config.items().size() != 4) {
    return fail("malformed header config");
  }
  cal.model = header.at("model").as_string();
  cal.model_version = static_cast<int>(header.at("model_version").as_int());
  cal.techlib = config.at("techlib").as_string();
  cal.conditions.supply_v = config.at("supply_v").as_number();
  cal.conditions.input_sparsity = config.at("sparsity").as_number();
  cal.conditions.activity = config.at("activity").as_number();
  cal.corpus_size = header.at("corpus_size").as_int();
  if (cal.corpus_size < 2) {
    return fail("malformed header (corpus_size below the 2-point fitting "
                "minimum)");
  }

  // --- module and scale lines ----------------------------------------------
  std::array<bool, kMacroComponentCount> seen{};
  bool saw_scales = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const Json& line = lines[i];
    if (line.contains("module")) {
      if (!has_exact_keys(line, {"module", "area_factor", "energy_factor"}) ||
          !line.at("module").is_string() ||
          !positive_finite_number(line.at("area_factor")) ||
          !positive_finite_number(line.at("energy_factor"))) {
        return fail(strfmt("malformed module line %zu", i + 1));
      }
      int slot = -1;
      for (int comp = 0; comp < kMacroComponentCount; ++comp) {
        if (line.at("module").as_string() ==
            macro_component_name(static_cast<MacroComponent>(comp))) {
          slot = comp;
          break;
        }
      }
      if (slot < 0) {
        return fail(strfmt("unknown module '%s' on line %zu",
                           line.at("module").as_string().c_str(), i + 1));
      }
      if (seen[static_cast<std::size_t>(slot)]) {
        return fail(strfmt("duplicate module '%s' on line %zu",
                           line.at("module").as_string().c_str(), i + 1));
      }
      seen[static_cast<std::size_t>(slot)] = true;
      cal.area_factor[static_cast<std::size_t>(slot)] =
          line.at("area_factor").as_number();
      cal.energy_factor[static_cast<std::size_t>(slot)] =
          line.at("energy_factor").as_number();
    } else if (line.contains("scales")) {
      if (saw_scales) return fail(strfmt("duplicate scales line %zu", i + 1));
      if (!has_exact_keys(line, {"scales"}) ||
          !line.at("scales").is_object()) {
        return fail(strfmt("malformed scales line %zu", i + 1));
      }
      const Json& scales = line.at("scales");
      if (scales.items().size() != 4 || !scales.contains("area") ||
          !scales.contains("delay") || !scales.contains("energy") ||
          !scales.contains("throughput") ||
          !positive_finite_number(scales.at("area")) ||
          !positive_finite_number(scales.at("delay")) ||
          !positive_finite_number(scales.at("energy")) ||
          !positive_finite_number(scales.at("throughput"))) {
        return fail(strfmt("malformed scales line %zu", i + 1));
      }
      cal.area_scale = scales.at("area").as_number();
      cal.delay_scale = scales.at("delay").as_number();
      cal.energy_scale = scales.at("energy").as_number();
      cal.throughput_scale = scales.at("throughput").as_number();
      saw_scales = true;
    } else {
      return fail(strfmt("unrecognized line %zu", i + 1));
    }
  }
  for (int comp = 0; comp < kMacroComponentCount; ++comp) {
    if (!seen[static_cast<std::size_t>(comp)]) {
      return fail(strfmt("truncated artifact: missing module '%s'",
                         macro_component_name(static_cast<MacroComponent>(
                             comp))));
    }
  }
  if (!saw_scales) return fail("truncated artifact: missing scales line");
  return cal;
}

std::optional<Calibration> load_calibration_for(const std::string& path,
                                                const Technology& tech,
                                                const EvalConditions& cond,
                                                std::string* error) {
  auto cal = load_calibration(path, error);
  if (!cal) return std::nullopt;
  const auto fail = [&](const std::string& msg) -> std::optional<Calibration> {
    if (error) {
      *error = strfmt("calibration artifact '%s': %s", path.c_str(),
                      msg.c_str());
    }
    return std::nullopt;
  };
  if (cal->model != "analytic") {
    return fail(strfmt("fitted for model '%s', not the analytic model",
                       cal->model.c_str()));
  }
  if (cal->model_version != kCostModelVersion) {
    return fail(strfmt("fitted against analytic model version %d; this "
                       "build is version %d (refit required)",
                       cal->model_version, kCostModelVersion));
  }
  if (cal->techlib != write_techlib(tech)) {
    return fail("technology fingerprint mismatch (fitted under a different "
                "techlib)");
  }
  if (cal->conditions.supply_v != cond.supply_v ||
      cal->conditions.input_sparsity != cond.input_sparsity ||
      cal->conditions.activity != cond.activity) {
    return fail("evaluation-conditions mismatch (fitted under different "
                "supply/sparsity/activity)");
  }
  return cal;
}

}  // namespace sega
