// Calibration — closing the analytic/measured loop.
//
// `sega_dcim validate` gates analytic-vs-RTL divergence; this module *learns*
// from it.  A deterministic least-squares fitter regresses per-module area and
// energy factors plus per-metric scale corrections from an RTL-traced knee
// corpus, and the result — a Calibration — rides along as a versioned,
// checksummed JSONL artifact (docs/FORMATS.md "Calibration artifact JSONL")
// that AnalyticCostModel optionally loads.  The artifact's identity
// (format version + content digest) joins the CostCache memo fingerprint and
// the sweep checkpoint config fingerprint, so calibrated and uncalibrated
// artifacts can never cross-contaminate.
//
// Fit design, and the envelope guarantee:
//
//   1. *Per-module factors* (area and energy separately): each factor is an
//      independent one-column least-squares fit of the measured component
//      breakdown against the analytic one — diagonal systems that stay full
//      rank even on the 3-knee default corpus (a joint 8-column regression
//      over 3 points would always be rank-deficient).  Modules absent from
//      the corpus keep factor 1.0.
//   2. *Per-metric scales* (area, delay, energy, throughput): with the module
//      factors applied, each headline metric gets one multiplicative scale
//      chosen as the **minimax center** s = (rho_max + rho_min) / 2 of the
//      measured/predicted ratios rho_i.  For 0 < a <= b, the resulting
//      envelope (b - a)/(a + b) never exceeds max(b - 1, 1 - a), the
//      uncalibrated envelope — so minimax centering *provably* tightens (or
//      matches) the per-metric max |rel-err| envelope, which a plain
//      least-squares scale does not guarantee.
//   3. *Envelope guard*: module factors carry no such proof, so after fitting
//      each metric the fitter re-evaluates the corpus through the exact
//      calibrated path and, if the envelope widened, falls back (factors to
//      1.0, rescale; ultimately scale 1.0 == bit-identical uncalibrated).
//      `validate --calibrate` therefore always reports after <= before.
//
// Determinism: the corpus is canonically sorted before any solve
// (sort-before-solve), every accumulation runs in a fixed order, and the
// calibrated evaluation path is per-point pure — fit and evaluation are
// bit-identical at any thread count and under any corpus permutation.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/design_point.h"
#include "cost/macro_model.h"
#include "tech/technology.h"
#include "util/json.h"

namespace sega {

/// Format version of the calibration artifact.  Bump whenever the line
/// schema or the meaning of any fitted parameter changes; loaders reject
/// other versions (a stale artifact must never silently reinterpret).
inline constexpr int kCalibrationFormatVersion = 1;

/// Deterministic ordinary least squares min ||A x - y||_2 via the normal
/// equations A^T A x = A^T y, with per-column scaling (each column divided
/// by its max |entry| before solving, undone after) and Gaussian elimination
/// with partial pivoting.  @p rows holds A row-major (every row the same
/// width), @p y the targets.
///
/// Hard errors (std::runtime_error with a clear message), never NaN/Inf:
/// empty system, fewer rows than columns, ragged rows, non-finite inputs,
/// or a rank-deficient A^T A (pivot below kRankTolerance after scaling).
std::vector<double> least_squares_fit(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& y);

/// One corpus point: a design point plus its *measured* (RTL-traced)
/// metrics.  The analytic side is recomputed by the fitter, so a corpus is
/// exactly what `validate` already produces per knee.
struct CalibrationSample {
  DesignPoint point;
  MacroMetrics measured;
};

/// Per-metric fit summary: the max |rel-err| envelope against the measured
/// corpus before and after calibration, and the fitted scale.
struct CalibrationMetricFit {
  double envelope_before = 0.0;
  double envelope_after = 0.0;
  double scale = 1.0;
  bool module_factors_kept = true;  ///< false: the envelope guard reset them
};

/// The fitted parameters plus the identity that fingerprints them.  A
/// default-constructed Calibration is the identity (every factor and scale
/// 1.0) — applying it reproduces the uncalibrated model bit-for-bit.
class Calibration {
 public:
  // --- fitted parameters ---------------------------------------------------
  /// Multiplicative factors on the analytic per-module area / per-cycle
  /// energy breakdown entries, indexed by MacroComponent.
  std::array<double, kMacroComponentCount> area_factor;
  std::array<double, kMacroComponentCount> energy_factor;
  /// Multiplicative corrections applied to the final headline metrics
  /// (area_mm2 / delay_ns / energy_per_mvm_nj / throughput_tops and every
  /// quantity derived from them).
  double area_scale = 1.0;
  double delay_scale = 1.0;
  double energy_scale = 1.0;
  double throughput_scale = 1.0;

  // --- identity ------------------------------------------------------------
  int format_version = kCalibrationFormatVersion;
  std::string model;       ///< fitted model's model_name() — "analytic"
  int model_version = 0;   ///< fitted model's model_version()
  std::string techlib;     ///< full serialized technology (write_techlib)
  EvalConditions conditions;
  std::int64_t corpus_size = 0;

  Calibration() {
    area_factor.fill(1.0);
    energy_factor.fill(1.0);
  }

  /// The exact artifact bytes `save_calibration` writes — canonical, so the
  /// digest is a pure function of the parameters + identity.
  std::string serialize() const;

  /// FNV-1a (32-bit, "%08x") over serialize() — the content digest that,
  /// with format_version, joins memo and checkpoint fingerprints.
  std::string digest() const;

  /// {"version": <format_version>, "digest": "<digest()>"} — the fingerprint
  /// fragment embedded in cost-memo headers and sweep config fingerprints.
  Json fingerprint() const;

  bool operator==(const Calibration& other) const;
};

/// Fit a Calibration for (tech, cond) over @p corpus.  Hard errors (false +
/// *error): empty corpus, fewer than two distinct design points, non-finite
/// or non-positive measured headline metrics, or a rank-deficient module
/// system.  On success @p fit_report (when given) receives the before/after
/// envelope per headline metric, keyed "area" / "delay" / "energy" /
/// "throughput".  By construction envelope_after <= envelope_before for
/// every metric.
std::optional<Calibration> fit_calibration(
    const Technology& tech, const EvalConditions& cond,
    std::vector<CalibrationSample> corpus, std::string* error,
    std::map<std::string, CalibrationMetricFit>* fit_report = nullptr);

/// Stage-4 derivation with @p cal applied: module factors on the component
/// breakdowns, then the per-metric scales on the final metrics (applied as
/// one trailing multiply, so metric == scale * unscaled_metric bit-exactly).
/// With the identity Calibration this is bit-identical to derive_metrics.
MacroMetrics derive_metrics_calibrated(const EvalContext& ctx,
                                       const MacroCensus& census,
                                       const CostedMacro& costed,
                                       const Calibration& cal);

/// Atomically write the artifact (write-temp-then-rename, per-PID temp).
bool save_calibration(const Calibration& cal, const std::string& path,
                      std::string* error);

/// Load and integrity-check an artifact: header marker + format version,
/// per-line "c" checksums, complete and well-typed module/scale lines,
/// finite positive parameters.  Any damage or version mismatch is a hard
/// error (nullopt + *error) — a calibration artifact is small normative
/// data of record, never a skip-and-recompute cache.
std::optional<Calibration> load_calibration(const std::string& path,
                                            std::string* error);

/// load_calibration plus a fingerprint match against the requesting context:
/// the artifact's model/model_version/techlib/conditions must equal what an
/// AnalyticCostModel over (tech, cond) would be fingerprinted with.  This is
/// the loader every CLI/spec entry point uses.
std::optional<Calibration> load_calibration_for(const std::string& path,
                                                const Technology& tech,
                                                const EvalConditions& cond,
                                                std::string* error);

}  // namespace sega
