// Tables V & VI — full-macro performance estimation for the two DCIM
// architectures, plus absolute-unit metrics derived through a Technology.
//
// This is the objective function of the design-space explorer: the NSGA-II
// optimizer minimizes [area, delay, energy, -throughput] as produced here
// (eq. (2) for MUL-CIM and eq. (3) for FP-CIM).
#pragma once

#include <map>
#include <string>

#include "arch/design_point.h"
#include "cost/components.h"

namespace sega {

/// Evaluation of one design point.  Normalized quantities are in NOR-gate
/// units; absolute quantities are derived through the Technology and the
/// EvalConditions.
struct MacroMetrics {
  // --- normalized (gate units) ---
  GateCount gates;               ///< full leaf-cell census
  double area_gates = 0.0;       ///< total area
  double delay_gates = 0.0;      ///< pipeline-stage critical path
  double energy_gates = 0.0;     ///< switching energy per cycle

  // --- absolute ---
  double area_um2 = 0.0;
  double area_mm2 = 0.0;
  double delay_ns = 0.0;           ///< clock period
  double freq_ghz = 0.0;           ///< 1 / delay
  double energy_per_cycle_fj = 0.0;
  double power_w = 0.0;            ///< energy_per_cycle / delay
  double energy_per_mvm_nj = 0.0;  ///< full-operand pass: E_cycle * cycles
  double throughput_tops = 0.0;    ///< 2 * N * H / (Bw * cycles * delay)
  double tops_per_w = 0.0;
  double tops_per_mm2 = 0.0;

  std::int64_t cycles_per_input = 0;

  /// Per-component normalized area, keys: "sram", "compute", "adder_tree",
  /// "accumulator", "fusion", "input_buffer", and for FP-CIM additionally
  /// "pre_alignment", "int_to_fp".
  std::map<std::string, double> area_breakdown;
  /// Per-component normalized per-cycle energy, same keys.
  std::map<std::string, double> energy_breakdown;

  /// The four objectives of eq. (2)/(3) in minimization form:
  /// [area_mm2, delay_ns, energy_per_mvm_nj, -throughput_tops].
  std::array<double, 4> objectives() const;
};

/// Evaluate a validated design point.  Precondition: dp passes
/// validate_design for its own wstore() (structure is self-consistent).
MacroMetrics evaluate_macro(const Technology& tech, const DesignPoint& dp,
                            const EvalConditions& cond = {});

/// Name of each objective in MacroMetrics::objectives() order.
const char* objective_name(std::size_t index);

}  // namespace sega
