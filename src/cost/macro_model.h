// Tables V & VI — full-macro performance estimation for the two DCIM
// architectures, plus absolute-unit metrics derived through a Technology.
//
// This is the objective function of the design-space explorer: the NSGA-II
// optimizer minimizes [area, delay, energy, -throughput] as produced here
// (eq. (2) for MUL-CIM and eq. (3) for FP-CIM).
//
// The evaluation is an explicit staged pipeline (the layered engine the
// batched CostModel builds on):
//
//   EvalContext        — per-(Technology, EvalConditions) constants, hoisted
//                        out of the per-point hot path (eval_context.h)
//   census_macro       — gate census: which module instances the macro is
//                        made of, with unit costs, copy counts and energy
//                        amortization (Table IV structure)
//   cost_components    — component costing: fold the census into normalized
//                        area / per-cycle energy / leaf-cell totals
//   derive_metrics     — absolute-metric derivation through the EvalContext
//
// evaluate_macro() composes the stages and is the scalar reference path;
// AnalyticCostModel::evaluate_batch (cost_model.h) runs the same stages with
// structure-of-arrays inner loops and a per-batch module-cost memo, producing
// bit-identical metrics.
#pragma once

#include <array>
#include <map>
#include <string>
#include <tuple>

#include "arch/design_point.h"
#include "cost/components.h"
#include "cost/eval_context.h"

namespace sega {

/// Version of the analytic cost model's formulas.  Bump whenever a change
/// alters any produced metric: persisted cost-cache memo files are
/// fingerprinted with this so stale caches can never leak old numbers into
/// new runs.
inline constexpr int kCostModelVersion = 1;

/// Evaluation of one design point.  Normalized quantities are in NOR-gate
/// units; absolute quantities are derived through the Technology and the
/// EvalConditions.
struct MacroMetrics {
  // --- normalized (gate units) ---
  GateCount gates;               ///< full leaf-cell census
  double area_gates = 0.0;       ///< total area
  double delay_gates = 0.0;      ///< pipeline-stage critical path
  double energy_gates = 0.0;     ///< switching energy per cycle

  // --- absolute ---
  double area_um2 = 0.0;
  double area_mm2 = 0.0;
  double delay_ns = 0.0;           ///< clock period
  double freq_ghz = 0.0;           ///< 1 / delay
  double energy_per_cycle_fj = 0.0;
  double power_w = 0.0;            ///< energy_per_cycle / delay
  double energy_per_mvm_nj = 0.0;  ///< full-operand pass: E_cycle * cycles
  double throughput_tops = 0.0;    ///< 2 * N * H / (Bw * cycles * delay)
  double tops_per_w = 0.0;
  double tops_per_mm2 = 0.0;

  std::int64_t cycles_per_input = 0;

  /// Per-component normalized area, keys: "sram", "compute", "adder_tree",
  /// "accumulator", "fusion", "input_buffer", and for FP-CIM additionally
  /// "pre_alignment", "int_to_fp".
  std::map<std::string, double> area_breakdown;
  /// Per-component normalized per-cycle energy, same keys.
  std::map<std::string, double> energy_breakdown;

  /// The four objectives of eq. (2)/(3) in minimization form:
  /// [area_mm2, delay_ns, energy_per_mvm_nj, -throughput_tops].
  std::array<double, 4> objectives() const;
};

/// Breakdown components of a macro, in census/accumulation order.
enum class MacroComponent {
  kSram,
  kCompute,
  kAdderTree,
  kAccumulator,
  kFusion,
  kInputBuffer,
  kPreAlignment,  ///< FP-CIM only
  kIntToFp,       ///< FP-CIM only
};
inline constexpr int kMacroComponentCount = 8;

/// Breakdown-map key of a component ("sram", "compute", ...).
const char* macro_component_name(MacroComponent component);

/// Memo of Table II/IV module costs keyed on their structural parameters.
/// The batched evaluation path shares one memo across a batch: neighbouring
/// design points reuse the same selectors, trees and accumulators, so most
/// census lookups become map hits.  Bound to one Technology; NOT thread-safe
/// (use one memo per batch/thread).
class ModuleCostMemo {
 public:
  explicit ModuleCostMemo(const Technology& tech) : tech_(&tech) {}

  const Technology& tech() const { return *tech_; }

  const ModuleCost& sel(int n);
  const ModuleCost& mul(int k);
  const ModuleCost& adder_tree(int h, int k, bool pipelined);
  const ModuleCost& shift_accumulator(int bx, int h, bool gated);
  const ModuleCost& result_fusion(int bw, int w);
  const ModuleCost& input_buffer(int h, int bx, int k);
  const ModuleCost& pre_alignment(int h, int be, int bm);
  const ModuleCost& int_to_fp(int br, int be);

 private:
  const Technology* tech_;
  std::map<int, ModuleCost> sel_, mul_;
  std::map<std::tuple<int, int, bool>, ModuleCost> tree_, accu_;
  std::map<std::tuple<int, int>, ModuleCost> fusion_, convert_;
  std::map<std::tuple<int, int, int>, ModuleCost> buffer_, align_;
};

/// One module-instance class in the census: @p copies instances of @p unit,
/// with per-cycle energy amortized as unit.energy * copies * energy_mul /
/// energy_div (the mul/div split preserves the historical rounding of the
/// streamed FP stages, which divide rather than multiply by a reciprocal).
struct ComponentUse {
  MacroComponent component = MacroComponent::kSram;
  ModuleCost unit;
  std::int64_t copies = 0;
  double energy_mul = 1.0;
  double energy_div = 1.0;
};

/// Stage-2 output: the full module census of one macro plus the stage delays
/// and the geometry facts the metric derivation needs.
struct MacroCensus {
  /// sram, weight sel, mul, tree, accumulator, fusion, input buffer,
  /// (+ pre-alignment, int-to-fp for FP-CIM), in accumulation order.
  std::array<ComponentUse, 9> parts;
  int part_count = 0;

  double array_path_delay = 0.0;  ///< buffer sel + weight sel + mul + tree
  double accu_delay = 0.0;        ///< shift accumulator loop
  double fusion_delay = 0.0;      ///< fusion (+ converter, FP)

  std::int64_t n = 0, h = 0;
  int bx = 0, bw = 0;
  std::int64_t cycles = 0;  ///< ceil(Bx / k)

  void add(MacroComponent component, const ModuleCost& unit,
           std::int64_t copies, double energy_mul = 1.0,
           double energy_div = 1.0);
};

/// Gate census of a validated design point.  Precondition: dp passes
/// validate_design for its own wstore() (structure is self-consistent).
/// @p memo, when given, must be bound to @p tech.
MacroCensus census_macro(const Technology& tech, const DesignPoint& dp,
                         ModuleCostMemo* memo = nullptr);

/// Stage-3 output: normalized totals and per-component breakdown.
struct CostedMacro {
  GateCount gates;
  double area = 0.0;
  double energy_per_cycle = 0.0;
  std::array<double, kMacroComponentCount> area_by{};
  std::array<double, kMacroComponentCount> energy_by{};
  std::array<bool, kMacroComponentCount> present{};
};

/// Fold a census into normalized component costs (accumulation order is the
/// census part order — the historical evaluate_macro order).
CostedMacro cost_components(const MacroCensus& census);

/// Stage 4: absolute metrics through the hoisted context.
MacroMetrics derive_metrics(const EvalContext& ctx, const MacroCensus& census,
                            const CostedMacro& costed);

/// Evaluate a validated design point — the scalar reference path, composing
/// the four stages above.
MacroMetrics evaluate_macro(const Technology& tech, const DesignPoint& dp,
                            const EvalConditions& cond = {});

/// Name of each objective in MacroMetrics::objectives() order.
const char* objective_name(std::size_t index);

}  // namespace sega
