#include "cost/rtl_cost_model.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "cost/layout_cost.h"
#include "rtl/harness.h"
#include "rtl/sta.h"
#include "util/assert.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace sega {

namespace {

RtlSimEngine resolve_engine(RtlSimEngine requested) {
  if (requested != RtlSimEngine::kAuto) return requested;
  const char* env = std::getenv("SEGA_RTL_SIM");
  if (env == nullptr || env[0] == '\0') return RtlSimEngine::kWide;
  const std::string_view v(env);
  if (v == "wide") return RtlSimEngine::kWide;
  SEGA_EXPECTS(v == "scalar");  // the only other recognized value
  return RtlSimEngine::kScalar;
}

/// Workload RNG seed — a pure function of the design point (splitmix64-style
/// mixing of every geometry field), so a point's measurement is identical
/// across threads, batch splits, and processes.
std::uint64_t workload_seed(const DesignPoint& dp) {
  std::uint64_t h = 0x5E6A0DC1u;  // arbitrary fixed basis
  const auto mix = [&h](std::uint64_t v) {
    h += v + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
  };
  mix(static_cast<std::uint64_t>(dp.arch));
  mix(static_cast<std::uint64_t>(dp.precision.kind));
  mix(static_cast<std::uint64_t>(dp.precision.int_bits));
  mix(static_cast<std::uint64_t>(dp.precision.exp_bits));
  mix(static_cast<std::uint64_t>(dp.precision.mant_bits));
  mix(static_cast<std::uint64_t>(dp.n));
  mix(static_cast<std::uint64_t>(dp.h));
  mix(static_cast<std::uint64_t>(dp.l));
  mix(static_cast<std::uint64_t>(dp.k));
  mix(dp.signed_weights ? 1u : 2u);
  mix(dp.pipelined_tree ? 1u : 2u);
  return h;
}

/// A random @p bits-wide operand whose bits are independently zeroed with
/// probability @p sparsity — the workload-level realization of
/// EvalConditions::input_sparsity ("zero bits do not toggle the datapath").
std::uint64_t random_operand(Rng& rng, int bits, double sparsity) {
  std::uint64_t value = 0;
  for (int b = 0; b < bits; ++b) {
    bool bit = (rng.next_u64() >> 63) != 0;
    if (bit && sparsity > 0.0 && rng.chance(sparsity)) bit = false;
    if (bit) value |= std::uint64_t{1} << b;
  }
  return value;
}

/// Scalar (verification) workload drive: one operand per settle pass.
void trace_scalar(DcimHarness& harness, const DesignPoint& dp, Rng& rng,
                  double sparsity) {
  GateSim& sim = harness.sim();
  const Netlist& nl = harness.macro().netlist;
  for (std::size_t i = 0; i < nl.sram_cells().size(); ++i) {
    sim.set_sram(i, (rng.next_u64() >> 63) != 0);
  }
  sim.begin_energy_trace();
  const int bx = dp.precision.input_bits();
  if (dp.arch == ArchKind::kMulCim) {
    std::vector<std::uint64_t> inputs(static_cast<std::size_t>(dp.h));
    for (int op = 0; op < kRtlWorkloadOperands; ++op) {
      for (auto& in : inputs) in = random_operand(rng, bx, sparsity);
      harness.compute_int(inputs, op % dp.l);
    }
  } else {
    const int be = dp.precision.exp_bits;
    std::vector<std::uint64_t> exponents(static_cast<std::size_t>(dp.h));
    std::vector<std::uint64_t> mantissas(static_cast<std::size_t>(dp.h));
    for (int op = 0; op < kRtlWorkloadOperands; ++op) {
      for (auto& e : exponents) e = random_operand(rng, be, 0.0);
      for (auto& mant : mantissas) mant = random_operand(rng, bx, sparsity);
      harness.compute_fp(exponents, mantissas, op % dp.l);
    }
  }
}

/// Lane-packed (production) workload drive: identical RNG draw order, but
/// 64 operands settle per pass — operand base+k rides lane k, exactly what
/// scalar iteration base+k saw.
void trace_wide(DcimHarness& harness, const DesignPoint& dp, Rng& rng,
                double sparsity) {
  GateSimWide& sim = harness.wide_sim();
  const Netlist& nl = harness.macro().netlist;
  for (std::size_t i = 0; i < nl.sram_cells().size(); ++i) {
    sim.set_sram(i, (rng.next_u64() >> 63) != 0);
  }
  sim.begin_energy_trace();
  const int bx = dp.precision.input_bits();
  for (int base = 0; base < kRtlWorkloadOperands;
       base += GateSimWide::kLanes) {
    const int lanes =
        std::min(GateSimWide::kLanes, kRtlWorkloadOperands - base);
    std::vector<std::int64_t> slots(static_cast<std::size_t>(lanes));
    for (int k = 0; k < lanes; ++k) {
      slots[static_cast<std::size_t>(k)] = (base + k) % dp.l;
    }
    if (dp.arch == ArchKind::kMulCim) {
      std::vector<std::vector<std::uint64_t>> inputs(
          static_cast<std::size_t>(lanes),
          std::vector<std::uint64_t>(static_cast<std::size_t>(dp.h)));
      for (int k = 0; k < lanes; ++k) {
        for (auto& in : inputs[static_cast<std::size_t>(k)]) {
          in = random_operand(rng, bx, sparsity);
        }
      }
      harness.compute_int_batch(inputs, slots);
    } else {
      const int be = dp.precision.exp_bits;
      std::vector<std::vector<std::uint64_t>> exponents(
          static_cast<std::size_t>(lanes),
          std::vector<std::uint64_t>(static_cast<std::size_t>(dp.h)));
      auto mantissas = exponents;
      for (int k = 0; k < lanes; ++k) {
        for (auto& e : exponents[static_cast<std::size_t>(k)]) {
          e = random_operand(rng, be, 0.0);
        }
        for (auto& mant : mantissas[static_cast<std::size_t>(k)]) {
          mant = random_operand(rng, bx, sparsity);
        }
      }
      harness.compute_fp_batch(exponents, mantissas, slots);
    }
  }
}

/// Folds the traced per-cycle energy and its per-group attribution into
/// @p m.  SimT is GateSim or GateSimWide; by the bit-identity contract the
/// folded numbers are the same either way.
template <typename SimT>
void fold_traced_energy(const SimT& sim, const Netlist& nl,
                        const Technology& tech, MacroMetrics& m) {
  const auto cycles = static_cast<double>(sim.traced_cycles());
  SEGA_ASSERT(cycles > 0.0);
  m.energy_gates = sim.traced_energy(tech) / cycles;
  for (std::size_t gi = 0; gi < nl.group_names().size(); ++gi) {
    const std::string& name = nl.group_names()[gi];
    if (name == "core") continue;
    m.energy_breakdown[name] =
        sim.traced_energy_of_group(tech, static_cast<int>(gi)) / cycles;
  }
}

}  // namespace

RtlCostModel::RtlCostModel(const Technology& tech, EvalConditions cond,
                           RtlCostModelOptions options)
    : ctx_(tech, cond),
      options_(options),
      engine_(resolve_engine(options.sim_engine)) {}

MacroMetrics RtlCostModel::evaluate(const DesignPoint& dp) const {
  // --- elaboration: the generated netlist is the ground truth -------------
  DcimHarness harness(dp);
  elaborations_.fetch_add(1, std::memory_order_relaxed);
  const Netlist& nl = harness.macro().netlist;
  const Technology& technology = tech();

  MacroMetrics m;
  m.gates = nl.census();
  m.area_gates = m.gates.area(technology);
  m.cycles_per_input = dp.cycles_per_input();

  // --- delay: STA over the levelized netlist ------------------------------
  // The clock period is the worst arrival anywhere — register setup paths
  // (buffer -> select -> multiply -> tree -> accumulator) and the fused
  // outputs, which are consumed every cycle.
  const StaResult sta = run_sta(nl, technology);
  m.delay_gates = sta.critical_delay();

  // --- energy: measured switching activity over workload vectors ----------
  // Program every SRAM bit cell with a random value (covers every slot and
  // partial trailing column groups alike), then stream kRtlWorkloadOperands
  // random (sparsity-shaped) operands through the harness protocol,
  // rotating the selected slot so the weight-select path toggles too.  The
  // trace starts after programming: weight upload is a one-time cost, not
  // per-cycle compute energy.  The wide engine settles all 64 operands in
  // one lane-packed pass; the scalar engine replays them one at a time —
  // both from the same per-point seed, bit-identical by contract.
  Rng rng(workload_seed(dp));
  const double sparsity = conditions().input_sparsity;
  if (engine_ == RtlSimEngine::kWide) {
    trace_wide(harness, dp, rng, sparsity);
    fold_traced_energy(harness.wide_sim(), nl, technology, m);
  } else {
    trace_scalar(harness, dp, rng, sparsity);
    fold_traced_energy(harness.sim(), nl, technology, m);
  }

  // --- per-component breakdown (normalized, like the analytic model's) ----
  // The generator tags every cell with its component group under the same
  // names the analytic breakdown uses; "core" holds only untagged glue and
  // is not a component.  (Energy attribution was folded with the trace
  // above; area comes from the census.)
  for (std::size_t gi = 0; gi < nl.group_names().size(); ++gi) {
    const std::string& name = nl.group_names()[gi];
    if (name == "core") continue;
    m.area_breakdown[name] =
        nl.census_of_group(static_cast<int>(gi)).area(technology);
  }

  // --- absolute derivation -------------------------------------------------
  // Area and delay convert exactly like derive_metrics (same EvalContext
  // arithmetic).  The measured energy embodies the real activity and the
  // workload's sparsity already, so only the supply (V^2) scale applies —
  // reusing ctx_.energy_fj would derate twice.
  m.area_um2 = ctx_.area_um2(m.area_gates);
  m.area_mm2 = m.area_um2 * 1e-6;
  m.delay_ns = ctx_.delay_ns(m.delay_gates);
  SEGA_ASSERT(m.delay_ns > 0.0);
  m.freq_ghz = 1.0 / m.delay_ns;
  EvalConditions supply_only;
  supply_only.supply_v = conditions().supply_v;
  supply_only.input_sparsity = 0.0;
  supply_only.activity = 1.0;
  m.energy_per_cycle_fj = technology.energy_fj(m.energy_gates, supply_only);
  m.power_w = m.energy_per_cycle_fj * 1e-15 / (m.delay_ns * 1e-9);
  m.energy_per_mvm_nj = m.energy_per_cycle_fj *
                        static_cast<double>(m.cycles_per_input) * 1e-6;

  // Throughput (Table V/VI form, with the measured clock period).
  const double macs_per_cycle =
      static_cast<double>(dp.n) * static_cast<double>(dp.h) /
      (static_cast<double>(dp.precision.weight_bits()) *
       static_cast<double>(m.cycles_per_input));
  const double ops_per_s = 2.0 * macs_per_cycle / (m.delay_ns * 1e-9);
  m.throughput_tops = ops_per_s * 1e-12;
  m.tops_per_w = m.throughput_tops / m.power_w;
  m.tops_per_mm2 = m.throughput_tops / m.area_mm2;

  // --- layout/interconnect stage (optional) --------------------------------
  // Extraction over the *placed elaborated netlist* — the same macro the
  // measurement ran on, floorplanned by layout/floorplan.  Wire switching
  // is the analytic estimate through ctx_ (routing toggles are not traced
  // by the gate-level sim), so both backends fold the identical wire-energy
  // term and their divergence stays a gate-level quantity.
  if (options_.layout) {
    apply_layout_cost(estimate_layout_cost(ctx_, harness.macro()), &m);
  }
  return m;
}

void RtlCostModel::evaluate_batch(Span<const DesignPoint> points,
                                  Span<MacroMetrics> out) const {
  SEGA_EXPECTS(points.size() == out.size());
  const std::size_t n = points.size();
  if (n == 0) return;
  if (n == 1) {
    out[0] = evaluate(points[0]);
    return;
  }
  // Each point's measurement is self-seeded and independent, so the batch
  // fans out per point; per-index slots keep results bit-identical to the
  // serial loop under any schedule.  Nested calls (a sweep cell already on
  // the pool) run inline serially via the pool's reentrancy contract.
  const auto measure = [&](std::size_t i) { out[i] = evaluate(points[i]); };
  if (options_.threads == 1 || ThreadPool::inside_pool_task()) {
    // Serial by request, or already on a pool worker (nested fan-out would
    // run inline anyway — skip building a private pool for nothing).
    for (std::size_t i = 0; i < n; ++i) measure(i);
    return;
  }
  if (options_.threads > 1) {
    ThreadPool pool(options_.threads);
    pool.parallel_for(n, measure);
    return;
  }
  ThreadPool::global().parallel_for(n, measure);
}

}  // namespace sega
