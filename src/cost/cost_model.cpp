#include "cost/cost_model.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cost/calibrate.h"
#include "cost/layout_cost.h"
#include "cost/rtl_cost_model.h"
#include "rtl/macro_builder.h"
#include "util/assert.h"
#include "util/strings.h"

namespace sega {

const char* cost_model_kind_name(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kAnalytic: return "analytic";
    case CostModelKind::kRtl: return "rtl";
  }
  SEGA_ASSERT(false);
  return "";
}

std::optional<CostModelKind> cost_model_kind_from_name(
    const std::string& name) {
  const std::string n = to_lower(trim(name));
  for (const CostModelKind kind :
       {CostModelKind::kAnalytic, CostModelKind::kRtl}) {
    if (n == cost_model_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<CostModel> make_cost_model(CostModelKind kind,
                                           const Technology& tech,
                                           EvalConditions cond) {
  switch (kind) {
    case CostModelKind::kAnalytic:
      return std::make_unique<AnalyticCostModel>(tech, cond);
    case CostModelKind::kRtl:
      return std::make_unique<RtlCostModel>(tech, cond);
  }
  SEGA_ASSERT(false);
  return nullptr;
}

std::unique_ptr<CostModel> make_cost_model(
    CostModelKind kind, const Technology& tech, EvalConditions cond,
    std::shared_ptr<const Calibration> cal) {
  if (!cal) return make_cost_model(kind, tech, cond);
  if (kind != CostModelKind::kAnalytic) {
    throw std::runtime_error(
        "a calibration artifact only applies to the analytic cost model; "
        "the rtl backend is the measurement it was fitted against");
  }
  return std::make_unique<AnalyticCostModel>(tech, cond, std::move(cal));
}

std::unique_ptr<CostModel> make_cost_model(
    CostModelKind kind, const Technology& tech, EvalConditions cond,
    std::shared_ptr<const Calibration> cal, bool layout) {
  if (!layout) return make_cost_model(kind, tech, cond, std::move(cal));
  if (cal && kind != CostModelKind::kAnalytic) {
    throw std::runtime_error(
        "a calibration artifact only applies to the analytic cost model; "
        "the rtl backend is the measurement it was fitted against");
  }
  switch (kind) {
    case CostModelKind::kAnalytic:
      return std::make_unique<AnalyticCostModel>(tech, cond, std::move(cal),
                                                 true);
    case CostModelKind::kRtl: {
      RtlCostModelOptions options;
      options.layout = true;
      return std::make_unique<RtlCostModel>(tech, cond, options);
    }
  }
  SEGA_ASSERT(false);
  return nullptr;
}

void CostModel::evaluate_batch(Span<const DesignPoint> points,
                               Span<MacroMetrics> out) const {
  SEGA_EXPECTS(points.size() == out.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    out[i] = evaluate(points[i]);
  }
}

AnalyticCostModel::AnalyticCostModel(const Technology& tech,
                                     EvalConditions cond)
    : ctx_(tech, cond) {}

AnalyticCostModel::AnalyticCostModel(const Technology& tech,
                                     EvalConditions cond,
                                     std::shared_ptr<const Calibration> cal)
    : ctx_(tech, cond), cal_(std::move(cal)) {}

AnalyticCostModel::AnalyticCostModel(const Technology& tech,
                                     EvalConditions cond,
                                     std::shared_ptr<const Calibration> cal,
                                     bool layout)
    : ctx_(tech, cond), cal_(std::move(cal)), layout_(layout) {}

MacroMetrics AnalyticCostModel::evaluate(const DesignPoint& dp) const {
  const MacroCensus census = census_macro(tech(), dp);
  MacroMetrics m =
      cal_ ? derive_metrics_calibrated(ctx_, census, cost_components(census),
                                       *cal_)
           : derive_metrics(ctx_, census, cost_components(census));
  if (layout_) {
    apply_layout_cost(estimate_layout_cost(ctx_, build_dcim_macro(dp)), &m);
  }
  return m;
}

void AnalyticCostModel::evaluate_batch(Span<const DesignPoint> points,
                                       Span<MacroMetrics> out) const {
  SEGA_EXPECTS(points.size() == out.size());
  const std::size_t n = points.size();
  if (n == 0) return;
  if (cal_) {
    // Calibrated path: fixed-order scalar derivation per point, sharing one
    // module-cost memo across the batch.  Per-point pure, so the result is
    // independent of batching and thread count, and bit-identical to the
    // fitter's own re-evaluation of the corpus.
    ModuleCostMemo memo(tech());
    for (std::size_t i = 0; i < n; ++i) {
      const MacroCensus census = census_macro(tech(), points[i], &memo);
      out[i] =
          derive_metrics_calibrated(ctx_, census, cost_components(census),
                                    *cal_);
      if (layout_) {
        apply_layout_cost(
            estimate_layout_cost(ctx_, build_dcim_macro(points[i])), &out[i]);
      }
    }
    return;
  }
  if (n == 1) {
    // Nothing to amortize — skip the batch scratch entirely.
    out[0] = evaluate(points[0]);
    return;
  }

  // Census + costing per point, sharing one module-cost memo: neighbouring
  // points reuse the same selectors/trees/accumulators, so most Table II/IV
  // closed forms are computed once per batch instead of once per point.
  ModuleCostMemo memo(tech());
  std::vector<MacroCensus> census(n);
  std::vector<CostedMacro> costed(n);
  for (std::size_t i = 0; i < n; ++i) {
    census[i] = census_macro(tech(), points[i], &memo);
    costed[i] = cost_components(census[i]);
  }

  // Absolute-metric derivation, structure-of-arrays: one tight loop per
  // derived field over the whole batch (contiguous doubles, no maps — the
  // loops vectorize).  Each per-point operation sequence is exactly
  // derive_metrics', so the results are bit-identical to the scalar path.
  std::vector<double> area_g(n), delay_g(n), energy_g(n), cycles(n);
  std::vector<double> area_um2(n), area_mm2(n), delay_ns(n), freq_ghz(n);
  std::vector<double> energy_cycle(n), power_w(n), energy_mvm(n);
  std::vector<double> tops(n), tops_w(n), tops_mm2(n);
  for (std::size_t i = 0; i < n; ++i) {
    area_g[i] = costed[i].area;
    delay_g[i] = std::max({census[i].array_path_delay, census[i].accu_delay,
                           census[i].fusion_delay});
    energy_g[i] = costed[i].energy_per_cycle;
    cycles[i] = static_cast<double>(census[i].cycles);
  }
  for (std::size_t i = 0; i < n; ++i) area_um2[i] = ctx_.area_um2(area_g[i]);
  for (std::size_t i = 0; i < n; ++i) area_mm2[i] = area_um2[i] * 1e-6;
  for (std::size_t i = 0; i < n; ++i) delay_ns[i] = ctx_.delay_ns(delay_g[i]);
  for (std::size_t i = 0; i < n; ++i) {
    SEGA_ASSERT(delay_ns[i] > 0.0);
    freq_ghz[i] = 1.0 / delay_ns[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    energy_cycle[i] = ctx_.energy_fj(energy_g[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    power_w[i] = energy_cycle[i] * 1e-15 / (delay_ns[i] * 1e-9);
  }
  for (std::size_t i = 0; i < n; ++i) {
    energy_mvm[i] = energy_cycle[i] * cycles[i] * 1e-6;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double macs_per_cycle = static_cast<double>(census[i].n) *
                                  static_cast<double>(census[i].h) /
                                  (static_cast<double>(census[i].bw) *
                                   cycles[i]);
    const double ops_per_s = 2.0 * macs_per_cycle / (delay_ns[i] * 1e-9);
    tops[i] = ops_per_s * 1e-12;
  }
  for (std::size_t i = 0; i < n; ++i) tops_w[i] = tops[i] / power_w[i];
  for (std::size_t i = 0; i < n; ++i) tops_mm2[i] = tops[i] / area_mm2[i];

  // Materialize the metrics structs (maps and census copies last, off the
  // arithmetic loops).
  for (std::size_t i = 0; i < n; ++i) {
    MacroMetrics& m = out[i];
    m = MacroMetrics{};
    m.gates = costed[i].gates;
    m.area_gates = area_g[i];
    m.delay_gates = delay_g[i];
    m.energy_gates = energy_g[i];
    for (int c = 0; c < kMacroComponentCount; ++c) {
      const auto slot = static_cast<std::size_t>(c);
      if (!costed[i].present[slot]) continue;
      const char* key = macro_component_name(static_cast<MacroComponent>(c));
      m.area_breakdown[key] = costed[i].area_by[slot];
      m.energy_breakdown[key] = costed[i].energy_by[slot];
    }
    m.cycles_per_input = census[i].cycles;
    m.area_um2 = area_um2[i];
    m.area_mm2 = area_mm2[i];
    m.delay_ns = delay_ns[i];
    m.freq_ghz = freq_ghz[i];
    m.energy_per_cycle_fj = energy_cycle[i];
    m.power_w = power_w[i];
    m.energy_per_mvm_nj = energy_mvm[i];
    m.throughput_tops = tops[i];
    m.tops_per_w = tops_w[i];
    m.tops_per_mm2 = tops_mm2[i];
  }

  // Layout/interconnect stage, per point after derivation.  The fold is
  // pure in (ctx_, point), so the batch stays bit-identical to a serial
  // loop of evaluate() regardless of batch split or thread count.
  if (layout_) {
    for (std::size_t i = 0; i < n; ++i) {
      apply_layout_cost(
          estimate_layout_cost(ctx_, build_dcim_macro(points[i])), &out[i]);
    }
  }
}

}  // namespace sega
