#include "cost/eval_context.h"

#include "util/assert.h"

namespace sega {

EvalContext::EvalContext(const Technology& tech, const EvalConditions& cond)
    : tech_(&tech), cond_(cond) {
  SEGA_EXPECTS(cond_.supply_v > 0.0);
  SEGA_EXPECTS(cond_.input_sparsity >= 0.0 && cond_.input_sparsity < 1.0);
  SEGA_EXPECTS(cond_.activity > 0.0 && cond_.activity <= 1.0);
  area_um2_per_gate_ = tech.area_um2_per_gate();
  delay_ns_per_gate_ = tech.delay_ns_per_gate();
  energy_fj_per_gate_ = tech.energy_fj_per_gate();
  // The exact intermediates of Technology::delay_ns / energy_fj; the
  // conversion helpers multiply them in the same order those methods do, so
  // hoisting changes nothing in the produced bits.
  v_scale_ = tech.nominal_supply_v() / cond_.supply_v;
  v2_ = (cond_.supply_v / tech.nominal_supply_v()) *
        (cond_.supply_v / tech.nominal_supply_v());
  activity_ = cond_.activity;
  one_minus_sparsity_ = 1.0 - cond_.input_sparsity;
}

}  // namespace sega
