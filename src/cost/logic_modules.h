// Table II — cost models of the digital logic modules DCIMs are built from.
//
// Each function returns a ModuleCost whose gate census matches the structure
// the RTL generator emits, and whose area/delay/energy follow the paper's
// closed forms:
//
//   1-bit*N-bit multiplier : A = N*A_NOR,           D = D_NOR,             E = N*E_NOR
//   N-bit adder (ripple)   : A = (N-1)*A_FA + A_HA, D = (N-1)*D_FA + D_HA, E = (N-1)*E_FA + E_HA
//   N:1 MUX (tree)         : A = (N-1)*A_MUX,       D = log2(N)*D_MUX,     E = (N-1)*E_MUX
//   N-bit shifter (barrel) : A = N*A_sel(N),        D = log2(N)*D_sel(N),  E = N*E_sel(N)
//   N-bit comparator       : same as N-bit adder
//
// The shifter delay follows the paper's printed form literally
// (log2(N)*D_sel(N)); see DESIGN.md §4 for the discussion.
#pragma once

#include "cost/gate_count.h"
#include "tech/technology.h"

namespace sega {

/// Cost of one combinational/sequential module.
struct ModuleCost {
  GateCount gates;     ///< leaf-cell census (drives area & energy)
  double area = 0.0;   ///< normalized area  == gates.area(tech)
  double delay = 0.0;  ///< normalized critical-path delay
  double energy = 0.0; ///< normalized switching energy per operation
                       ///< == gates.energy(tech)

  ModuleCost& operator+=(const ModuleCost& other);

  /// Accumulate @p times instances (area/energy scale; delay takes max).
  ModuleCost& add_parallel(const ModuleCost& other, std::int64_t times = 1);

  /// Accumulate a pipeline-free series stage (delay adds).
  ModuleCost& add_series(const ModuleCost& other, std::int64_t times = 1);
};

/// 1-bit x N-bit multiplier built from N NOR gates (Fig. 5).  N >= 1.
ModuleCost mul_cost(const Technology& tech, int n);

/// N-bit carry-ripple adder: (N-1) full adders + 1 half adder.  N >= 1
/// (N == 1 degenerates to a single half adder).
ModuleCost add_cost(const Technology& tech, int n);

/// N:1 one-bit selector from (N-1) MUX2 in a balanced tree.  N >= 1
/// (N == 1 is a wire: zero cost).
ModuleCost sel_cost(const Technology& tech, int n);

/// N-bit barrel shifter modeled as N parallel N:1 selectors.  N >= 1.
ModuleCost shift_cost(const Technology& tech, int n);

/// N-bit comparator, simplified to an N-bit adder (the DCIM only needs
/// "select the larger" in the exponent max tree).
ModuleCost comp_cost(const Technology& tech, int n);

}  // namespace sega
