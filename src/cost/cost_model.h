// CostModel — the first-class evaluation interface of the layered engine.
//
// Everything that consumes macro metrics (NSGA-II, the exhaustive/random/
// weighted-sum baselines, the sweep grid) talks to a CostModel rather than
// to the free evaluate_macro function.  The interface is batch-oriented:
// evaluate_batch() is the hot entry point, and pool tasks submit whole
// batches of design points instead of single ones, so an implementation can
// amortize per-batch work (hoisted EvalContext, module-cost memoization,
// structure-of-arrays metric derivation) across many points.
//
// AnalyticCostModel is the paper's Table II-VI model.  Its batched path is
// bit-identical to the scalar evaluate_macro reference — same stages, same
// arithmetic, same order — which tests cross-check point by point.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cost/macro_model.h"
#include "util/span.h"

namespace sega {

class Calibration;

class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual const Technology& tech() const = 0;
  virtual const EvalConditions& conditions() const = 0;

  /// Stable identity of the model's *formulas* — folded (with
  /// model_version) into persistent cost-memo fingerprints so memos written
  /// by different backends can never cross-contaminate.  Decorators
  /// delegate to the wrapped model; instrumented test wrappers around the
  /// analytic model keep the default.
  virtual const char* model_name() const { return "analytic"; }
  virtual int model_version() const { return kCostModelVersion; }

  /// The calibration this model evaluates under, or nullptr for the
  /// uncalibrated formulas.  Like model_name(), this is model *identity*:
  /// its fingerprint() joins persistent memo headers and sweep config
  /// fingerprints, so calibrated and uncalibrated results can never
  /// cross-contaminate.  Decorators delegate to the wrapped model.
  virtual std::shared_ptr<const Calibration> calibration() const {
    return nullptr;
  }

  /// Whether the layout/interconnect stage (layout_cost.h) is folded into
  /// this model's metrics.  Model *identity* like calibration(): the memo
  /// header and sweep config fingerprint gain a "layout" key only when
  /// enabled, so layout-on and layout-off state never cross-load while
  /// pre-existing layout-off artifacts stay byte-identical.  Decorators
  /// delegate to the wrapped model.
  virtual bool layout_enabled() const { return false; }

  /// Evaluate one design point.
  virtual MacroMetrics evaluate(const DesignPoint& dp) const = 0;

  /// Evaluate points[i] into out[i] for every i.  Precondition: the spans
  /// have equal size.  The default implementation loops evaluate();
  /// implementations override it to amortize work across the batch.
  /// Must be safe to call concurrently from several threads.
  virtual void evaluate_batch(Span<const DesignPoint> points,
                              Span<MacroMetrics> out) const;
};

/// The selectable evaluation backends (spec key "cost_model", CLI
/// --cost-model): the closed-form analytic model, or the measured RTL/STA/
/// gate-sim reference (rtl_cost_model.h).
enum class CostModelKind {
  kAnalytic,
  kRtl,
};

/// "analytic" / "rtl" — the model_name() of the backend, and the spelling
/// accepted by specs and the CLI.
const char* cost_model_kind_name(CostModelKind kind);
std::optional<CostModelKind> cost_model_kind_from_name(const std::string& name);

/// Construct the chosen backend.  The model keeps a pointer to @p tech; the
/// technology must outlive it.
std::unique_ptr<CostModel> make_cost_model(CostModelKind kind,
                                           const Technology& tech,
                                           EvalConditions cond = {});

/// Construct the chosen backend with a calibration applied.  Only the
/// analytic backend accepts one (the RTL model *is* the measurement);
/// kind == kRtl with a non-null @p cal is a hard error.  A null @p cal is
/// exactly make_cost_model(kind, tech, cond).
std::unique_ptr<CostModel> make_cost_model(
    CostModelKind kind, const Technology& tech, EvalConditions cond,
    std::shared_ptr<const Calibration> cal);

/// Construct the chosen backend with a calibration and the layout/
/// interconnect stage toggle.  @p layout == false is exactly the four-arg
/// overload.  Either backend accepts the layout stage; the calibration rule
/// of the four-arg overload is unchanged.
std::unique_ptr<CostModel> make_cost_model(
    CostModelKind kind, const Technology& tech, EvalConditions cond,
    std::shared_ptr<const Calibration> cal, bool layout);

/// The analytic model of Tables II-VI: EvalContext -> gate census ->
/// component costing -> absolute-metric derivation.  The context is hoisted
/// to construction; the batch path additionally shares a module-cost memo
/// across the batch and derives the absolute metrics with structure-of-
/// arrays loops over the whole batch.
class AnalyticCostModel final : public CostModel {
 public:
  /// The model keeps a pointer to @p tech; the technology must outlive it.
  explicit AnalyticCostModel(const Technology& tech, EvalConditions cond = {});

  /// The calibrated analytic model: derive_metrics_calibrated per point.
  /// A null @p cal is exactly the uncalibrated model.  The calibrated batch
  /// path is per-point pure (fixed-order scalar derivation under a shared
  /// module-cost memo), so results are bit-identical at any thread count
  /// and to fit-time re-evaluation.
  AnalyticCostModel(const Technology& tech, EvalConditions cond,
                    std::shared_ptr<const Calibration> cal);

  /// The full-identity constructor: calibration plus the layout stage
  /// toggle.  With @p layout, every evaluation path (scalar, calibrated
  /// loop, SoA batch) builds the macro netlist, floorplans it, and folds
  /// the wire parasitics (layout_cost.h) after metric derivation; the fold
  /// is per-point pure, so batches stay bit-identical to the scalar path.
  AnalyticCostModel(const Technology& tech, EvalConditions cond,
                    std::shared_ptr<const Calibration> cal, bool layout);

  const Technology& tech() const override { return ctx_.tech(); }
  const EvalConditions& conditions() const override {
    return ctx_.conditions();
  }
  std::shared_ptr<const Calibration> calibration() const override {
    return cal_;
  }
  bool layout_enabled() const override { return layout_; }

  MacroMetrics evaluate(const DesignPoint& dp) const override;
  void evaluate_batch(Span<const DesignPoint> points,
                      Span<MacroMetrics> out) const override;

 private:
  EvalContext ctx_;
  std::shared_ptr<const Calibration> cal_;
  bool layout_ = false;
};

}  // namespace sega
