#include "cost/batch_coalescer.h"

#include "util/assert.h"

namespace sega {

BatchCoalescer::BatchCoalescer(std::unique_ptr<const CostModel> model)
    : model_(std::move(model)) {
  SEGA_EXPECTS(model_ != nullptr);
}

MacroMetrics BatchCoalescer::evaluate(const DesignPoint& dp) const {
  // Route singles through the queued path: they are precisely the traffic
  // coalescing exists for.
  MacroMetrics out;
  evaluate_batch(Span<const DesignPoint>(&dp, 1), Span<MacroMetrics>(&out, 1));
  return out;
}

void BatchCoalescer::evaluate_batch(Span<const DesignPoint> points,
                                    Span<MacroMetrics> out) const {
  SEGA_EXPECTS(points.size() == out.size());
  if (points.empty()) return;
  if (points.size() >= kDirectThreshold) {
    // Big batches keep their parallelism: concurrent callers run
    // concurrently, exactly as without the decorator.
    direct_.fetch_add(1);
    inner_points_.fetch_add(points.size());
    model_->evaluate_batch(points, out);
    return;
  }

  Ticket ticket{points.data(), out.data(), points.size()};
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&ticket);
  tickets_.fetch_add(1);
  while (!ticket.done) {
    if (leader_active_) {
      // A leader is evaluating; it will drain this ticket in its next
      // round.  Also wake when the leader retires with this ticket still
      // pending — then claim leadership below instead of parking forever.
      cv_.wait(lock, [&] { return ticket.done || !leader_active_; });
      continue;
    }
    // Become the leader: repeatedly drain everything queued (our own ticket
    // plus whatever arrived while the previous round evaluated) into one
    // call on the wrapped model, until our own ticket is done.
    leader_active_ = true;
    while (!ticket.done) {
      std::vector<Ticket*> round;
      round.swap(queue_);
      lock.unlock();

      std::vector<DesignPoint> combined;
      std::size_t total = 0;
      for (const Ticket* t : round) total += t->count;
      combined.reserve(total);
      for (const Ticket* t : round) {
        combined.insert(combined.end(), t->points, t->points + t->count);
      }
      std::vector<MacroMetrics> results(combined.size());
      model_->evaluate_batch(Span<const DesignPoint>(combined),
                             Span<MacroMetrics>(results));
      inner_.fetch_add(1);
      inner_points_.fetch_add(combined.size());
      std::size_t seen = max_coalesced_.load();
      while (combined.size() > seen &&
             !max_coalesced_.compare_exchange_weak(seen, combined.size())) {
      }

      std::size_t offset = 0;
      for (Ticket* t : round) {
        for (std::size_t i = 0; i < t->count; ++i) {
          t->out[i] = results[offset + i];
        }
        offset += t->count;
      }

      lock.lock();
      for (Ticket* t : round) t->done = true;
      cv_.notify_all();
    }
    leader_active_ = false;
    // Tickets queued after our last drain need a new leader; the retire
    // notification above already woke every waiter, and the wait predicate
    // lets one of them take over.
    cv_.notify_all();
  }
}

}  // namespace sega
