// Table IV — cost models for each DCIM component.
//
// The paper's Table IV is an image; the closed forms here are reconstructed
// from §III-B.1's prose (see DESIGN.md §4).  Every structural choice made
// here is mirrored exactly by the RTL generators in src/rtl, and a test
// asserts gate-census equality between the two.
#pragma once

#include "cost/logic_modules.h"

namespace sega {

/// Adder tree summing H inputs of k bits each (H a power of two, H >= 1).
/// Level i in [1, log2 H] holds H/2^i ripple adders of width k+i-1.
/// Output width is k + log2(H).
ModuleCost adder_tree_cost(const Technology& tech, int h, int k);

/// Pipelined adder tree (extension): DFF banks after every level but the
/// last make each level its own stage; delay = the deepest single level,
/// D_add(k + log2(H) - 1).  @p latency_out (optional) receives the pipeline
/// depth in cycles, log2(H) - 1.
ModuleCost adder_tree_pipelined_cost(const Technology& tech, int h, int k,
                                     int* latency_out = nullptr);

/// Gated shift accumulator (extension, used with the pipelined tree): the
/// plain accumulator plus a per-bit enable mux so fill/drain cycles do not
/// disturb the accumulated value.
ModuleCost shift_accumulator_gated_cost(const Technology& tech, int bx,
                                        int h);

/// Shift accumulator for a column: collects partial sums from the adder tree
/// over ceil(Bx/k) cycles.  Width w = Bx + log2(H) (paper); w registers, one
/// w-bit barrel shifter, one w-bit adder.  Delay = shifter + adder (the DFF
/// sits at the pipeline boundary).
ModuleCost shift_accumulator_cost(const Technology& tech, int bx, int h);

/// Width of the shift-accumulator state: Bx + log2(H).
int accumulator_width(int bx, int h);

/// Result fusion: weighted sum of @p bw column results, each @p w bits wide,
/// where column j carries bit-significance j.  The significance shifts are
/// fixed wiring (free); only the bw-1 combining adders cost.  Built as a
/// balanced binary tree; widths grow with the wired shifts.
ModuleCost result_fusion_cost(const Technology& tech, int bw, int w);

/// Output width of the fused result: w + Bw (one bit of growth per column
/// significance plus carries folds into the recursive width computation).
int fusion_output_width(int bw, int w);

/// FP pre-alignment for H inputs with BE-bit exponents and BM-bit compute
/// mantissas: (H-1)-comparator max tree with BE-bit 2:1 selection muxes,
/// H BE-bit offset subtractors, H BM-bit alignment barrel shifters.
ModuleCost pre_alignment_cost(const Technology& tech, int h, int be, int bm);

/// INT-to-FP converter for a Br-bit fused integer result producing a BE-bit
/// exponent: leading-one detection (Br OR gates, log-depth), Br-bit
/// normalizing barrel shifter, BE-bit exponent adder.
ModuleCost int_to_fp_cost(const Technology& tech, int br, int be);

/// Input buffer: H rows x Bx bits of storage, streaming H*k bits per cycle
/// over ceil(Bx/k) cycles.  H*Bx DFFs plus H*k slice-selection muxes
/// (cycles:1 each).  Per-cycle energy amortizes the register load over the
/// streaming cycles.
ModuleCost input_buffer_cost(const Technology& tech, int h, int bx, int k);

}  // namespace sega
