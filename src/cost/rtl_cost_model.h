// RtlCostModel — the measured CostModel backend.
//
// Where AnalyticCostModel evaluates the paper's Table II-VI closed forms,
// this model evaluates the *hardware*: per design point it elaborates the
// full macro netlist through the src/rtl template generators, then
//
//   area    — leaf-cell census of the generated netlist, costed against the
//             technology (the quantity the closed forms approximate),
//   delay   — static timing analysis of the netlist (src/rtl/sta.h): the
//             real longest register-to-register / register-to-output path,
//   energy  — gate-level switching-activity measurement (GateSim energy
//             tracing) while the macro computes representative MVM workload
//             vectors through the DcimHarness streaming protocol.
//
// It implements the same batched CostModel interface, so every consumer —
// explore/compile/sweep, the CostCache decorator and its persistent memo,
// the `validate` divergence command — composes unchanged; only the memo
// fingerprint differs (model_name() "rtl"), so analytic and RTL memos can
// never cross-contaminate.
//
// Semantics vs the analytic model (the divergences `sega_dcim validate`
// quantifies):
//  * Area and delay convert through the same EvalContext scaling, so their
//    divergence is purely model-vs-netlist structure (census drift, glue
//    logic on the critical path).
//  * Energy is *measured* activity: the workload vectors embed the
//    conditions' input sparsity (bits are zeroed with that probability) and
//    the traced toggle counts embody the real datapath activity, so the
//    absolute conversion applies only the supply (V^2) scale — never the
//    analytic activity/sparsity derating, which would double-count.  The
//    analytic model (activity = 1) is therefore an upper bound on the
//    measured per-cycle energy.
//
// Determinism: the workload RNG is seeded from the design point alone, each
// point's measurement is self-contained, and evaluate_batch writes
// per-index slots — results are bit-identical at any thread count and for
// any batch split (asserted in test_rtl_cost_model).
#pragma once

#include <atomic>
#include <cstdint>

#include "cost/cost_model.h"

namespace sega {

/// Version of the RTL-backed measurement procedure (netlist templates, STA,
/// workload-vector generation).  Bump whenever a change alters any produced
/// metric; persistent memos are fingerprinted with it.
///
/// v2: operands are traced from the canonical (all-DFF-cleared, barrier
/// -baselined) harness state, forced programming/reset writes are no longer
/// billed as compute switching, and the workload grew from 4 to 64 operands
/// (one full GateSimWide lane block).
inline constexpr int kRtlCostModelVersion = 2;

/// MVM operand batches streamed per measurement — one full 64-lane block of
/// the bit-parallel engine, so the packed trace settles the whole workload
/// in a single pass.  Part of the measurement definition (not a tuning
/// knob): changing it changes the measured energy, which is why it is a
/// constant folded into kRtlCostModelVersion rather than an option.
inline constexpr int kRtlWorkloadOperands = 64;

/// Which simulation engine traces the workload energy.  Both are exactly
/// the same measurement — toggle counts, per-group attribution and every
/// derived metric are bit-identical (asserted in test_rtl_sim_wide and the
/// checked bench) — so they share memo fingerprints; only the wall-clock
/// differs by the ~64x lane packing.
enum class RtlSimEngine {
  kAuto,    ///< resolve SEGA_RTL_SIM ("scalar"|"wide"); wide when unset
  kScalar,  ///< GateSim, one operand per settle pass (verification path)
  kWide,    ///< GateSimWide, 64 operands per settle pass (production path)
};

struct RtlCostModelOptions {
  /// Thread-pool size for evaluate_batch: 0 = the process-global pool
  /// (SEGA_THREADS / hardware concurrency), 1 = serial, n = a private pool
  /// of n threads.  Scheduling only — never affects any metric.
  int threads = 0;
  /// Energy-trace engine (never affects any metric, only wall-clock).
  RtlSimEngine sim_engine = RtlSimEngine::kAuto;
  /// Fold the layout/interconnect stage (layout_cost.h) into the measured
  /// metrics: the already-elaborated netlist is floorplanned and the wire
  /// parasitics are applied after derivation.  Model identity (see
  /// CostModel::layout_enabled()) — changes every produced metric.
  bool layout = false;
};

class RtlCostModel final : public CostModel {
 public:
  /// The model keeps a pointer to @p tech; the technology must outlive it.
  explicit RtlCostModel(const Technology& tech, EvalConditions cond = {},
                        RtlCostModelOptions options = {});

  const Technology& tech() const override { return ctx_.tech(); }
  const EvalConditions& conditions() const override {
    return ctx_.conditions();
  }
  const char* model_name() const override { return "rtl"; }
  int model_version() const override { return kRtlCostModelVersion; }
  bool layout_enabled() const override { return options_.layout; }

  /// Elaborate + STA + simulate one design point.  Precondition (as for
  /// evaluate_macro): dp is structurally valid for its own wstore().
  MacroMetrics evaluate(const DesignPoint& dp) const override;

  /// Batch entry: points are measured independently on the thread pool
  /// (inline serially when already inside a pool task) into per-index
  /// slots — bit-identical to a serial loop of evaluate().
  void evaluate_batch(Span<const DesignPoint> points,
                      Span<MacroMetrics> out) const override;

  /// Number of netlists elaborated so far — the expensive unit of work.
  /// Tests assert a warm persistent memo serves a whole grid with zero
  /// elaborations.
  std::uint64_t elaborations() const { return elaborations_.load(); }

  /// The engine evaluate() actually uses (kAuto already resolved).
  RtlSimEngine sim_engine() const { return engine_; }

 private:
  EvalContext ctx_;
  RtlCostModelOptions options_;
  RtlSimEngine engine_ = RtlSimEngine::kWide;
  mutable std::atomic<std::uint64_t> elaborations_{0};
};

}  // namespace sega
