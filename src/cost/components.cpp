#include "cost/components.h"

#include <algorithm>

#include "util/assert.h"
#include "util/math.h"

namespace sega {

ModuleCost adder_tree_cost(const Technology& tech, int h, int k) {
  SEGA_EXPECTS(h >= 1 && is_pow2(static_cast<std::uint64_t>(h)));
  SEGA_EXPECTS(k >= 1);
  ModuleCost tree;
  const int levels = ilog2(static_cast<std::uint64_t>(h));
  for (int i = 1; i <= levels; ++i) {
    const std::int64_t adders = h >> i;
    const ModuleCost add = add_cost(tech, k + i - 1);
    tree.gates.add_scaled(add.gates, adders);
    tree.area += add.area * static_cast<double>(adders);
    tree.energy += add.energy * static_cast<double>(adders);
    tree.delay += add.delay;  // one adder per level on the critical path
  }
  return tree;
}

ModuleCost adder_tree_pipelined_cost(const Technology& tech, int h, int k,
                                     int* latency_out) {
  SEGA_EXPECTS(h >= 2 && is_pow2(static_cast<std::uint64_t>(h)));
  SEGA_EXPECTS(k >= 1);
  ModuleCost tree;
  const int levels = ilog2(static_cast<std::uint64_t>(h));
  const CellCost& dff = tech.cell(CellKind::kDff);
  for (int i = 1; i <= levels; ++i) {
    const std::int64_t adders = h >> i;
    const ModuleCost add = add_cost(tech, k + i - 1);
    tree.gates.add_scaled(add.gates, adders);
    tree.area += add.area * static_cast<double>(adders);
    tree.energy += add.energy * static_cast<double>(adders);
    // Each level is its own stage: the clock sees only the deepest one.
    tree.delay = std::max(tree.delay, add.delay);
    if (i < levels) {
      // Register bank after the level: (h/2^i) results of width k+i.
      const std::int64_t bits = adders * (k + i);
      tree.gates[CellKind::kDff] += bits;
      tree.area += static_cast<double>(bits) * dff.area;
      tree.energy += static_cast<double>(bits) * dff.energy;
    }
  }
  if (latency_out) *latency_out = levels - 1;
  return tree;
}

ModuleCost shift_accumulator_gated_cost(const Technology& tech, int bx,
                                        int h) {
  ModuleCost accu = shift_accumulator_cost(tech, bx, h);
  const int w = accumulator_width(bx, h);
  const CellCost& mux = tech.cell(CellKind::kMux2);
  accu.gates[CellKind::kMux2] += w;
  accu.area += w * mux.area;
  accu.energy += w * mux.energy;
  accu.delay += mux.delay;
  return accu;
}

int accumulator_width(int bx, int h) {
  SEGA_EXPECTS(bx >= 1 && h >= 1);
  return bx + ilog2(static_cast<std::uint64_t>(h));
}

ModuleCost shift_accumulator_cost(const Technology& tech, int bx, int h) {
  const int w = accumulator_width(bx, h);
  ModuleCost accu;
  const CellCost& dff = tech.cell(CellKind::kDff);
  accu.gates[CellKind::kDff] = w;
  accu.area = w * dff.area;
  accu.energy = w * dff.energy;

  const ModuleCost shifter = shift_cost(tech, w);
  const ModuleCost adder = add_cost(tech, w);
  accu.add_series(shifter);
  accu.add_series(adder);
  return accu;
}

namespace {

/// Recursive fusion-tree descriptor shared (by construction) with the RTL
/// builder: combining @p m columns of width @p w, the lower ceil(m/2)
/// columns fuse into the low significance group and the upper floor(m/2)
/// columns, wired left by ceil(m/2) bit positions, add on top.
struct FusionPlan {
  ModuleCost cost;
  int width = 0;  // result width in bits
};

FusionPlan fuse(const Technology& tech, int m, int w) {
  SEGA_EXPECTS(m >= 1);
  if (m == 1) return {ModuleCost{}, w};
  const int lo_cols = (m + 1) / 2;
  const int hi_cols = m / 2;
  FusionPlan lo = fuse(tech, lo_cols, w);
  FusionPlan hi = fuse(tech, hi_cols, w);
  const int out_w = std::max(lo.width, lo_cols + hi.width) + 1;
  ModuleCost combined;
  combined.add_parallel(lo.cost);
  combined.add_parallel(hi.cost);  // the two subtrees settle concurrently
  combined.delay = std::max(lo.cost.delay, hi.cost.delay);
  const ModuleCost adder = add_cost(tech, out_w);
  combined.gates.add_scaled(adder.gates, 1);
  combined.area += adder.area;
  combined.energy += adder.energy;
  combined.delay += adder.delay;
  return {combined, out_w};
}

}  // namespace

ModuleCost result_fusion_cost(const Technology& tech, int bw, int w) {
  SEGA_EXPECTS(bw >= 1 && w >= 1);
  return fuse(tech, bw, w).cost;
}

int fusion_output_width(int bw, int w) {
  SEGA_EXPECTS(bw >= 1 && w >= 1);
  if (bw == 1) return w;
  const int lo_cols = (bw + 1) / 2;
  const int hi_cols = bw / 2;
  const int lo_w = fusion_output_width(lo_cols, w);
  const int hi_w = fusion_output_width(hi_cols, w);
  return std::max(lo_w, lo_cols + hi_w) + 1;
}

ModuleCost pre_alignment_cost(const Technology& tech, int h, int be, int bm) {
  SEGA_EXPECTS(h >= 1 && be >= 1 && bm >= 1);
  ModuleCost alig;

  // (1) Max-exponent comparison tree: H-1 comparators, each paired with a
  // BE-bit wide 2:1 selection mux; depth ceil(log2 H).
  const ModuleCost comp = comp_cost(tech, be);
  const CellCost& mux = tech.cell(CellKind::kMux2);
  alig.gates.add_scaled(comp.gates, h - 1);
  alig.area += comp.area * (h - 1);
  alig.energy += comp.energy * (h - 1);
  alig.gates[CellKind::kMux2] += static_cast<std::int64_t>(h - 1) * be;
  alig.area += static_cast<double>(h - 1) * be * mux.area;
  alig.energy += static_cast<double>(h - 1) * be * mux.energy;
  alig.delay += ceil_log2(static_cast<std::uint64_t>(h)) *
                (comp.delay + mux.delay);

  // (2) Per-input offset subtractor (BE-bit adder) and BM-bit barrel shifter.
  const ModuleCost sub = add_cost(tech, be);
  const ModuleCost shifter = shift_cost(tech, bm);
  alig.gates.add_scaled(sub.gates, h);
  alig.area += sub.area * h;
  alig.energy += sub.energy * h;
  alig.gates.add_scaled(shifter.gates, h);
  alig.area += shifter.area * h;
  alig.energy += shifter.energy * h;
  alig.delay += sub.delay + shifter.delay;
  return alig;
}

ModuleCost int_to_fp_cost(const Technology& tech, int br, int be) {
  SEGA_EXPECTS(br >= 1 && be >= 1);
  ModuleCost convert;
  const CellCost& orc = tech.cell(CellKind::kOr);
  // Leading-one detection over Br bits: Br OR gates, log-depth.
  convert.gates[CellKind::kOr] = br;
  convert.area += br * orc.area;
  convert.energy += br * orc.energy;
  convert.delay += ceil_log2(static_cast<std::uint64_t>(br)) * orc.delay;
  // Normalizing shift + exponent arithmetic.
  convert.add_series(shift_cost(tech, br));
  convert.add_series(add_cost(tech, be));
  return convert;
}

ModuleCost input_buffer_cost(const Technology& tech, int h, int bx, int k) {
  SEGA_EXPECTS(h >= 1 && bx >= 1 && k >= 1 && k <= bx);
  const auto cycles = static_cast<std::int64_t>(
      ceil_div(static_cast<std::uint64_t>(bx), static_cast<std::uint64_t>(k)));
  ModuleCost buf;
  const CellCost& dff = tech.cell(CellKind::kDff);
  buf.gates[CellKind::kDff] = static_cast<std::int64_t>(h) * bx;
  buf.area = static_cast<double>(h) * bx * dff.area;
  // Registers load once per streamed operand; amortize over the cycles.
  buf.energy = static_cast<double>(h) * bx * dff.energy /
               static_cast<double>(cycles);

  const ModuleCost slice_sel = sel_cost(tech, static_cast<int>(cycles));
  buf.gates.add_scaled(slice_sel.gates, static_cast<std::int64_t>(h) * k);
  buf.area += slice_sel.area * static_cast<double>(h) * k;
  buf.energy += slice_sel.energy * static_cast<double>(h) * k;
  buf.delay += slice_sel.delay;
  return buf;
}

}  // namespace sega
