// Layout/interconnect cost — the optional third stage of the layered
// evaluation pipeline (EvalContext -> gate census -> component costing ->
// layout/interconnect -> metric derivation).
//
// The paper's macro flow merges three layout regions — memory array, DCIM
// compute, digital peripherals — yet the closed forms of Tables II-VI price
// only gates, never the wire between them.  This stage floorplans the macro
// (layout/floorplan.h), estimates half-perimeter wirelength over the placed
// netlist (layout/wirelength.h), and folds the wire parasitics into the
// delay/energy metrics:
//
//   delay   — an Elmore-style term on the *longest* net: wire delay grows
//             with both resistance and capacitance, each linear in length,
//             so the term is quadratic in max_net_um.
//   energy  — switched wire capacitance, linear in the *total* routed
//             length.  Routing toggles are not traced by the RTL backend's
//             gate-level simulation (it meters cell output switching, not
//             wires), so BOTH backends fold the same analytic wire-energy
//             estimate — their divergence stays a pure gate-level quantity.
//
// Both parasitics are expressed in NOR-gate equivalents per micron and
// converted through the model's EvalContext, so wire delay/energy scale
// with supply, activity and sparsity exactly like gate delay/energy and no
// new Technology constants are needed.
//
// The stage is a pure function of (Technology, EvalConditions, DesignPoint):
// floorplan and placement are deterministic, so layout-enabled metrics are
// bit-identical at any thread count, and whenever the macro routes any wire
// at all (every real macro does) the folded delay and energy are *strictly*
// greater than the layout-off metrics.  The toggle is model identity
// (CostModel::layout_enabled()): it joins memo headers and sweep config
// fingerprints so layout-on and layout-off state never cross-load.
#pragma once

#include <cstddef>

#include "cost/eval_context.h"
#include "cost/macro_model.h"

namespace sega {

struct DcimMacro;

/// Version of the wire-parasitic formulas below.  Emitted (only when the
/// stage is enabled) as the "layout" key of memo fingerprints — bump
/// whenever a constant or formula changes, so stale layout memos are
/// rejected rather than silently served.
inline constexpr int kLayoutCostVersion = 1;

/// Switched wire capacitance per routed micron, in NOR-gate energy
/// equivalents: total HPWL is multiplied by this and converted through
/// EvalContext::energy_fj (which applies the V^2 / activity / sparsity
/// derating — wires toggle with the datapath driving them).
inline constexpr double kWireEnergyGatesPerUm = 0.04;

/// Elmore wire-delay coefficient, in NOR-gate delay equivalents per um^2:
/// applied to the square of the longest net's HPWL (R and C are each linear
/// in length) and converted through EvalContext::delay_ns (which applies
/// the supply-dependent alpha-power scale, like any gate on the path).
inline constexpr double kWireDelayGatesPerUm2 = 4.0e-5;

/// The wirelength summary and its absolute parasitic cost for one macro.
struct LayoutCost {
  double wire_total_um = 0.0;  ///< summed HPWL over routed nets
  double wire_max_um = 0.0;    ///< longest net's HPWL
  std::size_t nets = 0;        ///< routed (non-degenerate) nets
  double wire_delay_ns = 0.0;  ///< Elmore term on the longest net
  double wire_energy_fj = 0.0; ///< switched wire cap per cycle
};

/// Floorplan the macro, estimate wirelength, and convert the parasitics
/// through @p ctx.  Deterministic; pure in (ctx, macro).
LayoutCost estimate_layout_cost(const EvalContext& ctx,
                                const DcimMacro& macro);

/// Fold @p lc into fully derived metrics: delay and per-cycle energy grow
/// by the wire terms and every downstream metric (frequency, power, energy
/// per MVM, throughput, TOPS/W, TOPS/mm^2) is re-derived with the same
/// arithmetic shape derive_metrics uses.  Area is unchanged — the census
/// already counts every cell the floorplan places.
void apply_layout_cost(const LayoutCost& lc, MacroMetrics* m);

}  // namespace sega
