#include "cost/macro_model.h"

#include <algorithm>

#include "util/assert.h"
#include "util/math.h"

namespace sega {

std::array<double, 4> MacroMetrics::objectives() const {
  return {area_mm2, delay_ns, energy_per_mvm_nj, -throughput_tops};
}

const char* objective_name(std::size_t index) {
  switch (index) {
    case 0: return "area_mm2";
    case 1: return "delay_ns";
    case 2: return "energy_per_mvm_nj";
    case 3: return "neg_throughput_tops";
  }
  SEGA_ASSERT(false);
  return "";
}

const char* macro_component_name(MacroComponent component) {
  switch (component) {
    case MacroComponent::kSram: return "sram";
    case MacroComponent::kCompute: return "compute";
    case MacroComponent::kAdderTree: return "adder_tree";
    case MacroComponent::kAccumulator: return "accumulator";
    case MacroComponent::kFusion: return "fusion";
    case MacroComponent::kInputBuffer: return "input_buffer";
    case MacroComponent::kPreAlignment: return "pre_alignment";
    case MacroComponent::kIntToFp: return "int_to_fp";
  }
  SEGA_ASSERT(false);
  return "";
}

// ------------------------------------------------------ module-cost memo

namespace {

/// Generic lookup-or-compute for the memo maps.
template <typename Map, typename Key, typename Fn>
const ModuleCost& memo_get(Map& map, const Key& key, Fn&& compute) {
  const auto it = map.find(key);
  if (it != map.end()) return it->second;
  return map.emplace(key, compute()).first->second;
}

}  // namespace

const ModuleCost& ModuleCostMemo::sel(int n) {
  return memo_get(sel_, n, [&] { return sel_cost(*tech_, n); });
}

const ModuleCost& ModuleCostMemo::mul(int k) {
  return memo_get(mul_, k, [&] { return mul_cost(*tech_, k); });
}

const ModuleCost& ModuleCostMemo::adder_tree(int h, int k, bool pipelined) {
  return memo_get(tree_, std::make_tuple(h, k, pipelined), [&] {
    return pipelined ? adder_tree_pipelined_cost(*tech_, h, k)
                     : adder_tree_cost(*tech_, h, k);
  });
}

const ModuleCost& ModuleCostMemo::shift_accumulator(int bx, int h, bool gated) {
  return memo_get(accu_, std::make_tuple(bx, h, gated), [&] {
    return gated ? shift_accumulator_gated_cost(*tech_, bx, h)
                 : shift_accumulator_cost(*tech_, bx, h);
  });
}

const ModuleCost& ModuleCostMemo::result_fusion(int bw, int w) {
  return memo_get(fusion_, std::make_tuple(bw, w),
                  [&] { return result_fusion_cost(*tech_, bw, w); });
}

const ModuleCost& ModuleCostMemo::input_buffer(int h, int bx, int k) {
  return memo_get(buffer_, std::make_tuple(h, bx, k),
                  [&] { return input_buffer_cost(*tech_, h, bx, k); });
}

const ModuleCost& ModuleCostMemo::pre_alignment(int h, int be, int bm) {
  return memo_get(align_, std::make_tuple(h, be, bm),
                  [&] { return pre_alignment_cost(*tech_, h, be, bm); });
}

const ModuleCost& ModuleCostMemo::int_to_fp(int br, int be) {
  return memo_get(convert_, std::make_tuple(br, be),
                  [&] { return int_to_fp_cost(*tech_, br, be); });
}

// -------------------------------------------------------- stage 2: census

void MacroCensus::add(MacroComponent component, const ModuleCost& unit,
                      std::int64_t copies, double energy_mul,
                      double energy_div) {
  SEGA_ASSERT(part_count < static_cast<int>(parts.size()));
  ComponentUse& use = parts[static_cast<std::size_t>(part_count++)];
  use.component = component;
  use.unit = unit;
  use.copies = copies;
  use.energy_mul = energy_mul;
  use.energy_div = energy_div;
}

MacroCensus census_macro(const Technology& tech, const DesignPoint& dp,
                         ModuleCostMemo* memo) {
  SEGA_EXPECTS(dp.n >= 1 && dp.h >= 2 && dp.l >= 1 && dp.k >= 1);
  SEGA_EXPECTS(dp.arch == arch_for(dp.precision));
  SEGA_EXPECTS(memo == nullptr || &memo->tech() == &tech);

  // Per-call fallback memo: the module functions are pure, so routing the
  // scalar path through an empty memo costs one map insert per module and
  // keeps the census logic single-sourced.  Constructed lazily so the
  // batched hot path (which always supplies a memo) doesn't pay for it.
  std::optional<ModuleCostMemo> local;
  ModuleCostMemo& m = memo ? *memo : local.emplace(tech);

  MacroCensus census;
  census.n = dp.n;
  census.h = dp.h;
  census.bx = dp.precision.input_bits();
  census.bw = dp.precision.weight_bits();
  SEGA_EXPECTS(dp.k <= census.bx);
  const int h = static_cast<int>(dp.h);
  const int k = static_cast<int>(dp.k);
  census.cycles = static_cast<std::int64_t>(
      ceil_div(static_cast<std::uint64_t>(census.bx),
               static_cast<std::uint64_t>(dp.k)));

  // Memory array: N*H*L SRAM bit cells (zero read latency/power per Table III).
  ModuleCost sram;
  sram.gates[CellKind::kSram] = 1;
  sram.area = tech.cell(CellKind::kSram).area;
  sram.energy = tech.cell(CellKind::kSram).energy;
  census.add(MacroComponent::kSram, sram, dp.n * dp.h * dp.l);

  // Compute units: per cell one L:1 1-bit weight selector + a 1xk multiplier.
  const ModuleCost& wsel = m.sel(static_cast<int>(dp.l));
  const ModuleCost& mul = m.mul(k);
  census.add(MacroComponent::kCompute, wsel, dp.n * dp.h);
  census.add(MacroComponent::kCompute, mul, dp.n * dp.h);

  // Column adder trees (optionally pipelined — extension knob).
  const ModuleCost& tree = m.adder_tree(h, k, dp.pipelined_tree);
  census.add(MacroComponent::kAdderTree, tree, dp.n);

  // Shift accumulators (gated when the tree is pipelined).
  const ModuleCost& accu = m.shift_accumulator(census.bx, h, dp.pipelined_tree);
  census.add(MacroComponent::kAccumulator, accu, dp.n);

  // Result fusion: one unit per Bw columns; fires once per streamed operand,
  // amortized over the streaming cycles.
  const int w = accumulator_width(census.bx, h);
  const ModuleCost& fusion = m.result_fusion(census.bw, w);
  const std::int64_t fusion_units = static_cast<std::int64_t>(
      ceil_div(static_cast<std::uint64_t>(dp.n),
               static_cast<std::uint64_t>(census.bw)));
  census.add(MacroComponent::kFusion, fusion, fusion_units,
             1.0 / static_cast<double>(census.cycles));

  // Input buffer.
  const ModuleCost& buf = m.input_buffer(h, census.bx, k);
  census.add(MacroComponent::kInputBuffer, buf, 1);

  census.array_path_delay = buf.delay + wsel.delay + mul.delay + tree.delay;
  census.accu_delay = accu.delay;
  census.fusion_delay = fusion.delay;

  if (dp.arch == ArchKind::kFpCim) {
    const int be = dp.precision.exp_bits;
    const int bm = dp.precision.compute_mant_bits();

    // FP pre-alignment: processes a fresh input set once per streamed
    // operand; amortized over the streaming cycles (a division, not a
    // reciprocal multiply — the energy_div slot keeps that rounding).
    const ModuleCost& alig = m.pre_alignment(h, be, bm);
    census.add(MacroComponent::kPreAlignment, alig, 1, 1.0,
               static_cast<double>(census.cycles));
    // The pre-alignment is its own pipeline stage in front of the array.
    census.array_path_delay = std::max(census.array_path_delay, alig.delay);

    // INT-to-FP converters: one per fusion unit, on the fusion stage.
    const int br = fusion_output_width(census.bw, w);
    const ModuleCost& convert = m.int_to_fp(br, be);
    census.add(MacroComponent::kIntToFp, convert, fusion_units, 1.0,
               static_cast<double>(census.cycles));
    census.fusion_delay += convert.delay;
  }

  return census;
}

// ------------------------------------------------------- stage 3: costing

CostedMacro cost_components(const MacroCensus& census) {
  CostedMacro costed;
  for (int i = 0; i < census.part_count; ++i) {
    const ComponentUse& use = census.parts[static_cast<std::size_t>(i)];
    costed.gates.add_scaled(use.unit.gates, use.copies);
    const double area = use.unit.area * static_cast<double>(use.copies);
    const double energy = use.unit.energy * static_cast<double>(use.copies) *
                          use.energy_mul / use.energy_div;
    costed.area += area;
    costed.energy_per_cycle += energy;
    const auto slot = static_cast<std::size_t>(use.component);
    costed.area_by[slot] += area;
    costed.energy_by[slot] += energy;
    costed.present[slot] = true;
  }
  return costed;
}

// ------------------------------------------------------ stage 4: derive

MacroMetrics derive_metrics(const EvalContext& ctx, const MacroCensus& census,
                            const CostedMacro& costed) {
  MacroMetrics m;
  m.gates = costed.gates;
  m.area_gates = costed.area;
  m.energy_gates = costed.energy_per_cycle;
  m.delay_gates = std::max(
      {census.array_path_delay, census.accu_delay, census.fusion_delay});
  for (int i = 0; i < kMacroComponentCount; ++i) {
    const auto slot = static_cast<std::size_t>(i);
    if (!costed.present[slot]) continue;
    const char* key = macro_component_name(static_cast<MacroComponent>(i));
    m.area_breakdown[key] = costed.area_by[slot];
    m.energy_breakdown[key] = costed.energy_by[slot];
  }
  m.cycles_per_input = census.cycles;

  m.area_um2 = ctx.area_um2(m.area_gates);
  m.area_mm2 = m.area_um2 * 1e-6;
  m.delay_ns = ctx.delay_ns(m.delay_gates);
  SEGA_ASSERT(m.delay_ns > 0.0);
  m.freq_ghz = 1.0 / m.delay_ns;
  m.energy_per_cycle_fj = ctx.energy_fj(m.energy_gates);
  m.power_w = m.energy_per_cycle_fj * 1e-15 / (m.delay_ns * 1e-9);
  m.energy_per_mvm_nj = m.energy_per_cycle_fj *
                        static_cast<double>(m.cycles_per_input) * 1e-6;

  // Throughput (Table V/VI): every group of Bw columns completes N*H/Bw
  // MACs per ceil(Bx/k) cycles; 1 MAC = 2 ops.
  const double macs_per_cycle =
      static_cast<double>(census.n) * static_cast<double>(census.h) /
      (static_cast<double>(census.bw) *
       static_cast<double>(m.cycles_per_input));
  const double ops_per_s = 2.0 * macs_per_cycle / (m.delay_ns * 1e-9);
  m.throughput_tops = ops_per_s * 1e-12;
  m.tops_per_w = m.throughput_tops / m.power_w;
  m.tops_per_mm2 = m.throughput_tops / m.area_mm2;
  return m;
}

MacroMetrics evaluate_macro(const Technology& tech, const DesignPoint& dp,
                            const EvalConditions& cond) {
  const EvalContext ctx(tech, cond);
  const MacroCensus census = census_macro(tech, dp);
  return derive_metrics(ctx, census, cost_components(census));
}

}  // namespace sega
