#include "cost/macro_model.h"

#include <algorithm>

#include "util/assert.h"
#include "util/math.h"

namespace sega {

std::array<double, 4> MacroMetrics::objectives() const {
  return {area_mm2, delay_ns, energy_per_mvm_nj, -throughput_tops};
}

const char* objective_name(std::size_t index) {
  switch (index) {
    case 0: return "area_mm2";
    case 1: return "delay_ns";
    case 2: return "energy_per_mvm_nj";
    case 3: return "neg_throughput_tops";
  }
  SEGA_ASSERT(false);
  return "";
}

namespace {

/// Shared assembly of the integer MAC body (SRAM array, compute units,
/// adder trees, shift accumulators, result fusion, input buffer).
/// For FP-CIM the caller passes the mantissa widths as bx/bw.
struct MacroAssembly {
  GateCount gates;
  double area = 0.0;
  double energy_per_cycle = 0.0;
  double array_path_delay = 0.0;   ///< buffer sel + weight sel + mul + tree
  double accu_delay = 0.0;         ///< shift accumulator loop
  double fusion_delay = 0.0;       ///< fusion (+ converter, FP)
  std::map<std::string, double> area_breakdown;
  std::map<std::string, double> energy_breakdown;
};

MacroAssembly assemble_int_body(const Technology& tech, const DesignPoint& dp,
                                int bx, int bw) {
  MacroAssembly a;
  const auto n = dp.n;
  const auto h = dp.h;
  const auto l = dp.l;
  const int k = static_cast<int>(dp.k);
  const std::int64_t cycles = static_cast<std::int64_t>(ceil_div(
      static_cast<std::uint64_t>(bx), static_cast<std::uint64_t>(dp.k)));

  auto account = [&a](const std::string& key, const ModuleCost& unit,
                      std::int64_t copies, double energy_scale = 1.0) {
    a.gates.add_scaled(unit.gates, copies);
    const double area = unit.area * static_cast<double>(copies);
    const double energy =
        unit.energy * static_cast<double>(copies) * energy_scale;
    a.area += area;
    a.energy_per_cycle += energy;
    a.area_breakdown[key] += area;
    a.energy_breakdown[key] += energy;
  };

  // Memory array: N*H*L SRAM bit cells (zero read latency/power per Table III).
  ModuleCost sram;
  sram.gates[CellKind::kSram] = 1;
  sram.area = tech.cell(CellKind::kSram).area;
  sram.energy = tech.cell(CellKind::kSram).energy;
  account("sram", sram, n * h * l);

  // Compute units: per cell one L:1 1-bit weight selector + a 1xk multiplier.
  const ModuleCost wsel = sel_cost(tech, static_cast<int>(l));
  const ModuleCost mul = mul_cost(tech, k);
  account("compute", wsel, n * h);
  account("compute", mul, n * h);

  // Column adder trees (optionally pipelined — extension knob).
  const ModuleCost tree =
      dp.pipelined_tree
          ? adder_tree_pipelined_cost(tech, static_cast<int>(h), k)
          : adder_tree_cost(tech, static_cast<int>(h), k);
  account("adder_tree", tree, n);

  // Shift accumulators (gated when the tree is pipelined).
  const ModuleCost accu =
      dp.pipelined_tree
          ? shift_accumulator_gated_cost(tech, bx, static_cast<int>(h))
          : shift_accumulator_cost(tech, bx, static_cast<int>(h));
  account("accumulator", accu, n);

  // Result fusion: one unit per Bw columns; fires once per streamed operand,
  // amortized over the streaming cycles.
  const int w = accumulator_width(bx, static_cast<int>(h));
  const ModuleCost fusion = result_fusion_cost(tech, bw, w);
  const std::int64_t fusion_units = static_cast<std::int64_t>(
      ceil_div(static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(bw)));
  account("fusion", fusion, fusion_units, 1.0 / static_cast<double>(cycles));

  // Input buffer.
  const ModuleCost buf = input_buffer_cost(tech, static_cast<int>(h), bx, k);
  account("input_buffer", buf, 1);

  a.array_path_delay = buf.delay + wsel.delay + mul.delay + tree.delay;
  a.accu_delay = accu.delay;
  a.fusion_delay = fusion.delay;
  return a;
}

MacroMetrics finalize(const Technology& tech, const DesignPoint& dp,
                      const EvalConditions& cond, const MacroAssembly& a,
                      int bx, int bw) {
  MacroMetrics m;
  m.gates = a.gates;
  m.area_gates = a.area;
  m.energy_gates = a.energy_per_cycle;
  m.delay_gates =
      std::max({a.array_path_delay, a.accu_delay, a.fusion_delay});
  m.area_breakdown = a.area_breakdown;
  m.energy_breakdown = a.energy_breakdown;
  m.cycles_per_input = static_cast<std::int64_t>(ceil_div(
      static_cast<std::uint64_t>(bx), static_cast<std::uint64_t>(dp.k)));

  m.area_um2 = tech.area_um2(m.area_gates);
  m.area_mm2 = m.area_um2 * 1e-6;
  m.delay_ns = tech.delay_ns(m.delay_gates, cond);
  SEGA_ASSERT(m.delay_ns > 0.0);
  m.freq_ghz = 1.0 / m.delay_ns;
  m.energy_per_cycle_fj = tech.energy_fj(m.energy_gates, cond);
  m.power_w = m.energy_per_cycle_fj * 1e-15 / (m.delay_ns * 1e-9);
  m.energy_per_mvm_nj = m.energy_per_cycle_fj *
                        static_cast<double>(m.cycles_per_input) * 1e-6;

  // Throughput (Table V/VI): every group of Bw columns completes N*H/Bw
  // MACs per ceil(Bx/k) cycles; 1 MAC = 2 ops.
  const double macs_per_cycle =
      static_cast<double>(dp.n) * static_cast<double>(dp.h) /
      (static_cast<double>(bw) * static_cast<double>(m.cycles_per_input));
  const double ops_per_s = 2.0 * macs_per_cycle / (m.delay_ns * 1e-9);
  m.throughput_tops = ops_per_s * 1e-12;
  m.tops_per_w = m.throughput_tops / m.power_w;
  m.tops_per_mm2 = m.throughput_tops / m.area_mm2;
  return m;
}

}  // namespace

MacroMetrics evaluate_macro(const Technology& tech, const DesignPoint& dp,
                            const EvalConditions& cond) {
  SEGA_EXPECTS(dp.n >= 1 && dp.h >= 2 && dp.l >= 1 && dp.k >= 1);
  SEGA_EXPECTS(dp.arch == arch_for(dp.precision));

  const int bx = dp.precision.input_bits();
  const int bw = dp.precision.weight_bits();
  SEGA_EXPECTS(dp.k <= bx);

  MacroAssembly a = assemble_int_body(tech, dp, bx, bw);

  if (dp.arch == ArchKind::kFpCim) {
    const int be = dp.precision.exp_bits;
    const int bm = dp.precision.compute_mant_bits();
    const std::int64_t cycles = static_cast<std::int64_t>(ceil_div(
        static_cast<std::uint64_t>(bx), static_cast<std::uint64_t>(dp.k)));

    // FP pre-alignment: processes a fresh input set once per streamed
    // operand; amortized over the streaming cycles.
    const ModuleCost alig =
        pre_alignment_cost(tech, static_cast<int>(dp.h), be, bm);
    a.gates.add_scaled(alig.gates, 1);
    a.area += alig.area;
    const double alig_energy = alig.energy / static_cast<double>(cycles);
    a.energy_per_cycle += alig_energy;
    a.area_breakdown["pre_alignment"] += alig.area;
    a.energy_breakdown["pre_alignment"] += alig_energy;
    // The pre-alignment is its own pipeline stage in front of the array.
    a.array_path_delay = std::max(a.array_path_delay, alig.delay);

    // INT-to-FP converters: one per fusion unit, on the fusion stage.
    const int w = accumulator_width(bx, static_cast<int>(dp.h));
    const int br = fusion_output_width(bw, w);
    const ModuleCost convert = int_to_fp_cost(tech, br, be);
    const std::int64_t fusion_units = static_cast<std::int64_t>(ceil_div(
        static_cast<std::uint64_t>(dp.n), static_cast<std::uint64_t>(bw)));
    a.gates.add_scaled(convert.gates, fusion_units);
    const double conv_area = convert.area * static_cast<double>(fusion_units);
    const double conv_energy = convert.energy *
                               static_cast<double>(fusion_units) /
                               static_cast<double>(cycles);
    a.area += conv_area;
    a.energy_per_cycle += conv_energy;
    a.area_breakdown["int_to_fp"] += conv_area;
    a.energy_breakdown["int_to_fp"] += conv_energy;
    a.fusion_delay += convert.delay;
  }

  return finalize(tech, dp, cond, a, bx, bw);
}

}  // namespace sega
