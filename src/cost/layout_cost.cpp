#include "cost/layout_cost.h"

#include "layout/floorplan.h"
#include "layout/wirelength.h"
#include "rtl/macro_builder.h"
#include "util/assert.h"

namespace sega {

LayoutCost estimate_layout_cost(const EvalContext& ctx,
                                const DcimMacro& macro) {
  const MacroLayout layout = floorplan_macro(ctx.tech(), macro);
  const WirelengthReport report =
      estimate_wirelength(layout, macro.netlist);

  LayoutCost lc;
  lc.wire_total_um = report.total_um;
  lc.wire_max_um = report.max_net_um;
  lc.nets = report.nets;
  // Both parasitics go through the EvalContext conversions so they pick up
  // the same supply / activity / sparsity derating as the gates that drive
  // the wires.
  lc.wire_delay_ns =
      ctx.delay_ns(kWireDelayGatesPerUm2 * lc.wire_max_um * lc.wire_max_um);
  lc.wire_energy_fj = ctx.energy_fj(kWireEnergyGatesPerUm * lc.wire_total_um);
  return lc;
}

void apply_layout_cost(const LayoutCost& lc, MacroMetrics* m) {
  SEGA_EXPECTS(m != nullptr);
  SEGA_EXPECTS(lc.wire_delay_ns >= 0.0 && lc.wire_energy_fj >= 0.0);
  const double old_delay_ns = m->delay_ns;
  m->delay_ns += lc.wire_delay_ns;
  m->energy_per_cycle_fj += lc.wire_energy_fj;

  // Re-derive everything downstream of delay/energy with the exact
  // arithmetic shape of derive_metrics (macro_model.cpp); area is
  // unchanged, so tops_per_mm2 moves only through throughput.
  m->freq_ghz = 1.0 / m->delay_ns;
  m->power_w = m->energy_per_cycle_fj * 1e-15 / (m->delay_ns * 1e-9);
  m->energy_per_mvm_nj = m->energy_per_cycle_fj *
                         static_cast<double>(m->cycles_per_input) * 1e-6;
  m->throughput_tops *= old_delay_ns / m->delay_ns;
  m->tops_per_w = m->throughput_tops / m->power_w;
  m->tops_per_mm2 = m->throughput_tops / m->area_mm2;
}

}  // namespace sega
