// GateCount — integer census of leaf cells in a (sub)circuit.
//
// The cost models and the RTL generators both produce GateCounts; a test
// asserts they agree cell-for-cell, which pins the analytical model to the
// actual generated hardware.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "tech/technology.h"

namespace sega {

struct GateCount {
  std::array<std::int64_t, kCellKindCount> counts{};

  std::int64_t& operator[](CellKind kind) {
    return counts[static_cast<std::size_t>(kind)];
  }
  std::int64_t operator[](CellKind kind) const {
    return counts[static_cast<std::size_t>(kind)];
  }

  GateCount& operator+=(const GateCount& other);
  friend GateCount operator+(GateCount a, const GateCount& b) {
    a += b;
    return a;
  }

  /// Add @p times copies of @p other.
  GateCount& add_scaled(const GateCount& other, std::int64_t times);

  /// Total normalized area of these cells under @p tech.
  double area(const Technology& tech) const;

  /// Total normalized switching energy (one event per cell) under @p tech.
  double energy(const Technology& tech) const;

  /// Total number of cells.
  std::int64_t total() const;

  bool operator==(const GateCount& other) const { return counts == other.counts; }

  std::string to_string() const;
};

}  // namespace sega
