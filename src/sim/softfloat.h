// Softfloat-lite: encode/decode for the custom floating-point formats the
// compiler supports (FP8 E4M3, FP16, BF16, FP32), independent of host FPU
// behavior.
//
// Accelerator-style semantics (documented deviations from IEEE-754):
//  * subnormals flush to zero on both encode and decode (FTZ/DAZ),
//  * values beyond the format's range saturate to the largest finite value,
//  * NaN is not representable; encoding a NaN is a precondition violation.
// These match the arithmetic the DCIM datapath implements and keep the
// behavioral model bit-exact against the RTL.
#pragma once

#include <cstdint>

#include "arch/precision.h"

namespace sega {

/// Decoded fields of a floating-point value.
struct FpParts {
  bool sign = false;
  int exponent = 0;        ///< biased exponent field
  std::uint64_t mantissa = 0;  ///< compute mantissa incl. the implicit one
                               ///< (0 when the value is zero)
  bool is_zero() const { return mantissa == 0; }
};

/// Exponent bias of a format: 2^(BE-1) - 1.
int fp_bias(const Precision& p);

/// Largest finite value of the format.
double fp_max(const Precision& p);

/// Decode raw bits (width p.total_bits()) to fields.  Subnormals decode as
/// zero.
FpParts fp_decode(const Precision& p, std::uint64_t bits);

/// Encode fields to raw bits.  Precondition: mantissa fits compute width and
/// is normalized (MSB set) unless zero; exponent within field range.
std::uint64_t fp_encode(const Precision& p, const FpParts& parts);

/// Convert raw bits to double (exact: every supported format fits in a
/// double).
double fp_to_double(const Precision& p, std::uint64_t bits);

/// Convert a double to the nearest representable value (round to nearest
/// even, saturating, FTZ).  Precondition: value is finite.
std::uint64_t fp_from_double(const Precision& p, double value);

/// Quantize a double through the format: fp_to_double(fp_from_double(v)).
double fp_quantize(const Precision& p, double value);

}  // namespace sega
