#include "sim/softfloat.h"

#include <cmath>

#include "util/assert.h"
#include "util/math.h"

namespace sega {

int fp_bias(const Precision& p) {
  SEGA_EXPECTS(p.is_float());
  return static_cast<int>(pow2(p.exp_bits - 1)) - 1;
}

double fp_max(const Precision& p) {
  SEGA_EXPECTS(p.is_float());
  const int emax = static_cast<int>(pow2(p.exp_bits)) - 1 - fp_bias(p);
  const double frac =
      2.0 - std::ldexp(1.0, -p.mant_bits);  // 1.111...1 in binary
  return std::ldexp(frac, emax);
}

FpParts fp_decode(const Precision& p, std::uint64_t bits) {
  SEGA_EXPECTS(p.is_float());
  SEGA_EXPECTS(bits < pow2(p.total_bits()));
  const std::uint64_t mant_mask = pow2(p.mant_bits) - 1;
  const std::uint64_t exp_mask = pow2(p.exp_bits) - 1;
  FpParts parts;
  parts.sign = ((bits >> (p.exp_bits + p.mant_bits)) & 1u) != 0;
  parts.exponent = static_cast<int>((bits >> p.mant_bits) & exp_mask);
  const std::uint64_t stored = bits & mant_mask;
  if (parts.exponent == 0) {
    // Subnormal (or zero): flush to zero.
    parts.mantissa = 0;
    parts.exponent = 0;
  } else {
    parts.mantissa = stored | pow2(p.mant_bits);  // implicit one
  }
  return parts;
}

std::uint64_t fp_encode(const Precision& p, const FpParts& parts) {
  SEGA_EXPECTS(p.is_float());
  if (parts.is_zero()) {
    return parts.sign ? pow2(p.exp_bits + p.mant_bits) : 0;
  }
  SEGA_EXPECTS(parts.mantissa >= pow2(p.mant_bits));
  SEGA_EXPECTS(parts.mantissa < pow2(p.compute_mant_bits()));
  SEGA_EXPECTS(parts.exponent >= 1);
  SEGA_EXPECTS(parts.exponent < static_cast<int>(pow2(p.exp_bits)));
  std::uint64_t bits = parts.mantissa & (pow2(p.mant_bits) - 1);
  bits |= static_cast<std::uint64_t>(parts.exponent) << p.mant_bits;
  if (parts.sign) bits |= pow2(p.exp_bits + p.mant_bits);
  return bits;
}

double fp_to_double(const Precision& p, std::uint64_t bits) {
  const FpParts parts = fp_decode(p, bits);
  if (parts.is_zero()) return parts.sign ? -0.0 : 0.0;
  const double mag = std::ldexp(
      static_cast<double>(parts.mantissa),
      parts.exponent - fp_bias(p) - p.mant_bits);
  return parts.sign ? -mag : mag;
}

std::uint64_t fp_from_double(const Precision& p, double value) {
  SEGA_EXPECTS(p.is_float());
  SEGA_EXPECTS(std::isfinite(value));
  FpParts parts;
  parts.sign = std::signbit(value);
  const double mag = std::fabs(value);
  if (mag == 0.0) return fp_encode(p, parts);

  // Saturate beyond the largest finite value.
  const double vmax = fp_max(p);
  if (mag >= vmax) {
    parts.exponent = static_cast<int>(pow2(p.exp_bits)) - 1;
    parts.mantissa = pow2(p.compute_mant_bits()) - 1;
    return fp_encode(p, parts);
  }

  int e2 = 0;
  const double frac = std::frexp(mag, &e2);  // frac in [0.5, 1)
  // Normalized target: mantissa in [2^mant_bits, 2^(mant_bits+1)).
  double scaled = std::ldexp(frac, p.mant_bits + 1);  // in [2^mb, 2^(mb+1))
  std::uint64_t mant = static_cast<std::uint64_t>(scaled);
  const double rem = scaled - static_cast<double>(mant);
  // Round to nearest even.
  if (rem > 0.5 || (rem == 0.5 && (mant & 1u))) ++mant;
  int exponent = e2 - 1 + fp_bias(p);
  if (mant == pow2(p.compute_mant_bits())) {
    mant >>= 1;
    ++exponent;
    if (exponent >= static_cast<int>(pow2(p.exp_bits))) {
      // Rounded past the top: saturate.
      parts.exponent = static_cast<int>(pow2(p.exp_bits)) - 1;
      parts.mantissa = pow2(p.compute_mant_bits()) - 1;
      return fp_encode(p, parts);
    }
  }
  if (exponent < 1) {
    // Subnormal range: flush to zero.
    parts.mantissa = 0;
    return fp_encode(p, parts);
  }
  parts.exponent = exponent;
  parts.mantissa = mant;
  return fp_encode(p, parts);
}

double fp_quantize(const Precision& p, double value) {
  return fp_to_double(p, fp_from_double(p, value));
}

}  // namespace sega
