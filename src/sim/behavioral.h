// Word-level behavioral model of the DCIM macro.
//
// Computes exactly what the gate-level netlist computes — including the
// bit-serial streaming, the FP alignment truncation and the INT-to-FP
// normalization — but at word granularity, so it scales to the full-size
// macros the explorer selects (the gate-level simulator is for small-config
// equivalence tests).
//
// Two API layers:
//  * raw layer (mvm_int / mvm_fp_raw): mirrors the netlist ports bit-exactly
//    (unsigned operands); used for RTL-equivalence testing.
//  * value layer (mvm_fp_values / quantized INT helpers): full FP pipeline on
//    doubles — quantize operands into the target format, offline-align the
//    weights, run the raw pipeline, reconstruct doubles — used by examples
//    and accuracy studies.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/design_point.h"
#include "sim/softfloat.h"

namespace sega {

class BehavioralDcim {
 public:
  explicit BehavioralDcim(const DesignPoint& dp);

  const DesignPoint& design() const { return dp_; }
  int groups() const { return groups_; }

  /// Unsigned integer MVM: inputs[h] (< 2^Bx), weights[groups][h] (< 2^Bw).
  /// Mirrors DcimHarness::compute_int.
  std::vector<std::uint64_t> mvm_int(
      const std::vector<std::uint64_t>& inputs,
      const std::vector<std::vector<std::uint64_t>>& weights) const;

  /// Signed-weight MVM (design built with signed_weights): weights in
  /// [-2^(Bw-1), 2^(Bw-1)), unsigned activations.  Mirrors
  /// DcimHarness::compute_int_signed.
  std::vector<std::int64_t> mvm_int_signed(
      const std::vector<std::uint64_t>& inputs,
      const std::vector<std::vector<std::int64_t>>& weights) const;

  /// Raw FP pipeline mirroring DcimHarness::compute_fp: unsigned exponent /
  /// mantissa operands, returns converted {mantissa, exponent} per group and
  /// the input max exponent.
  struct FpRawOutput {
    std::vector<std::uint64_t> mantissa;
    std::vector<std::uint64_t> exponent;
    std::uint64_t max_exp = 0;
  };
  FpRawOutput mvm_fp_raw(
      const std::vector<std::uint64_t>& exponents,
      const std::vector<std::uint64_t>& mantissas,
      const std::vector<std::vector<std::uint64_t>>& weight_mantissas) const;

  /// Full FP dot-product pipeline on real values (one group): quantizes
  /// inputs and weights into the design's format, offline-aligns the weight
  /// mantissas to the group's max weight exponent (with truncation, as the
  /// paper's pre-stored mantissas imply), runs the aligned integer MAC with
  /// input alignment truncation, and reconstructs the result as a double.
  /// Signs are handled arithmetically (the sign datapath is XOR/two's
  /// complement glue the cost model does not itemize).
  double dot_fp_values(const std::vector<double>& inputs,
                       const std::vector<double>& weights) const;

  /// Exact reference for dot_fp_values error studies (quantized operands,
  /// exact accumulation).
  double dot_fp_reference(const std::vector<double>& inputs,
                          const std::vector<double>& weights) const;

 private:
  DesignPoint dp_;
  int groups_ = 0;
};

}  // namespace sega
