#include "sim/behavioral.h"

#include <cmath>

#include "cost/components.h"
#include "util/assert.h"
#include "util/math.h"

namespace sega {

BehavioralDcim::BehavioralDcim(const DesignPoint& dp) : dp_(dp) {
  SEGA_EXPECTS(dp_.n >= 1 && dp_.h >= 1 && dp_.l >= 1 && dp_.k >= 1);
  SEGA_EXPECTS(dp_.arch == arch_for(dp_.precision));
  groups_ = static_cast<int>(
      ceil_div(static_cast<std::uint64_t>(dp_.n),
               static_cast<std::uint64_t>(dp_.precision.weight_bits())));
}

std::vector<std::uint64_t> BehavioralDcim::mvm_int(
    const std::vector<std::uint64_t>& inputs,
    const std::vector<std::vector<std::uint64_t>>& weights) const {
  SEGA_EXPECTS(dp_.arch == ArchKind::kMulCim);
  SEGA_EXPECTS(static_cast<std::int64_t>(inputs.size()) == dp_.h);
  SEGA_EXPECTS(static_cast<int>(weights.size()) == groups_);
  const int bx = dp_.precision.input_bits();
  const int bw = dp_.precision.weight_bits();
  // The bit-serial shift-accumulate reconstructs the exact product: the
  // accumulator width Bx + log2(H) provably holds every partial sum, so the
  // behavioral computation is the plain dot product (the gate-level
  // equivalence test pins this).
  std::vector<std::uint64_t> out(weights.size(), 0);
  for (std::size_t g = 0; g < weights.size(); ++g) {
    SEGA_EXPECTS(static_cast<std::int64_t>(weights[g].size()) == dp_.h);
    std::uint64_t acc = 0;
    for (std::size_t r = 0; r < inputs.size(); ++r) {
      SEGA_EXPECTS(inputs[r] < pow2(bx));
      SEGA_EXPECTS(weights[g][r] < pow2(bw));
      acc += inputs[r] * weights[g][r];
    }
    out[g] = acc;
  }
  return out;
}

std::vector<std::int64_t> BehavioralDcim::mvm_int_signed(
    const std::vector<std::uint64_t>& inputs,
    const std::vector<std::vector<std::int64_t>>& weights) const {
  SEGA_EXPECTS(dp_.arch == ArchKind::kMulCim);
  SEGA_EXPECTS(dp_.signed_weights);
  SEGA_EXPECTS(static_cast<std::int64_t>(inputs.size()) == dp_.h);
  SEGA_EXPECTS(static_cast<int>(weights.size()) == groups_);
  const int bx = dp_.precision.input_bits();
  const int bw = dp_.precision.weight_bits();
  const std::int64_t lo = -(std::int64_t{1} << (bw - 1));
  const std::int64_t hi = (std::int64_t{1} << (bw - 1)) - 1;
  std::vector<std::int64_t> out(weights.size(), 0);
  for (std::size_t g = 0; g < weights.size(); ++g) {
    SEGA_EXPECTS(static_cast<std::int64_t>(weights[g].size()) == dp_.h);
    std::int64_t acc = 0;
    for (std::size_t r = 0; r < inputs.size(); ++r) {
      SEGA_EXPECTS(inputs[r] < pow2(bx));
      SEGA_EXPECTS(weights[g][r] >= lo && weights[g][r] <= hi);
      acc += static_cast<std::int64_t>(inputs[r]) * weights[g][r];
    }
    out[g] = acc;
  }
  return out;
}

namespace {

/// Alignment with flush: offsets at or beyond the mantissa width shift
/// everything out (the RTL's padded-candidate barrel shifter + flush gate).
std::uint64_t align_mantissa(std::uint64_t mant, std::uint64_t offset) {
  if (offset >= 64) return 0;
  return mant >> offset;
}

}  // namespace

BehavioralDcim::FpRawOutput BehavioralDcim::mvm_fp_raw(
    const std::vector<std::uint64_t>& exponents,
    const std::vector<std::uint64_t>& mantissas,
    const std::vector<std::vector<std::uint64_t>>& weight_mantissas) const {
  SEGA_EXPECTS(dp_.arch == ArchKind::kFpCim);
  SEGA_EXPECTS(static_cast<std::int64_t>(exponents.size()) == dp_.h);
  SEGA_EXPECTS(exponents.size() == mantissas.size());
  SEGA_EXPECTS(static_cast<int>(weight_mantissas.size()) == groups_);
  const int bm = dp_.precision.input_bits();
  const int be = dp_.precision.exp_bits;
  const int bias = fp_bias(dp_.precision);
  const int w = bm + ilog2(static_cast<std::uint64_t>(dp_.h));
  const int br = fusion_output_width(dp_.precision.weight_bits(), w);

  FpRawOutput out;
  std::uint64_t emax = 0;
  for (const std::uint64_t e : exponents) {
    SEGA_EXPECTS(e < pow2(be));
    emax = std::max(emax, e);
  }
  out.max_exp = emax;

  std::vector<std::uint64_t> aligned(mantissas.size());
  for (std::size_t r = 0; r < mantissas.size(); ++r) {
    SEGA_EXPECTS(mantissas[r] < pow2(bm));
    aligned[r] = align_mantissa(mantissas[r], emax - exponents[r]);
  }

  out.mantissa.resize(weight_mantissas.size());
  out.exponent.resize(weight_mantissas.size());
  for (std::size_t g = 0; g < weight_mantissas.size(); ++g) {
    SEGA_EXPECTS(static_cast<std::int64_t>(weight_mantissas[g].size()) ==
                 dp_.h);
    std::uint64_t acc = 0;
    for (std::size_t r = 0; r < aligned.size(); ++r) {
      SEGA_EXPECTS(weight_mantissas[g][r] < pow2(bm));
      acc += aligned[r] * weight_mantissas[g][r];
    }
    if (acc == 0) {
      out.mantissa[g] = 0;
      out.exponent[g] = 0;
      continue;
    }
    const int p = bit_width(acc) - 1;
    // Normalize to br bits, keep the top bm (the RTL converter).
    const std::uint64_t norm = acc << (br - 1 - p);
    out.mantissa[g] = (norm >> (br - bm)) & (pow2(bm) - 1);
    // The exponent datapath is a be-bit bus: congruent mod 2^BE.
    out.exponent[g] =
        static_cast<std::uint64_t>(p + bias) & (pow2(be) - 1);
  }
  return out;
}

double BehavioralDcim::dot_fp_values(const std::vector<double>& inputs,
                                     const std::vector<double>& weights) const {
  SEGA_EXPECTS(dp_.arch == ArchKind::kFpCim);
  SEGA_EXPECTS(inputs.size() == weights.size());
  SEGA_EXPECTS(!inputs.empty());
  const Precision& p = dp_.precision;
  const int mb = p.mant_bits;
  const int bias = fp_bias(p);

  // Quantize and decode the operands.
  std::vector<FpParts> x(inputs.size()), wgt(weights.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    x[i] = fp_decode(p, fp_from_double(p, inputs[i]));
    wgt[i] = fp_decode(p, fp_from_double(p, weights[i]));
  }

  // Input alignment to the batch max exponent (runtime pre-alignment).
  int emax = 0;
  for (const auto& xi : x) {
    if (!xi.is_zero()) emax = std::max(emax, xi.exponent);
  }
  // Weight offline alignment to the group max exponent (pre-stored
  // mantissas).
  int wemax = 0;
  for (const auto& wi : wgt) {
    if (!wi.is_zero()) wemax = std::max(wemax, wi.exponent);
  }

  std::int64_t acc = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (x[i].is_zero() || wgt[i].is_zero()) continue;
    const std::uint64_t xa = align_mantissa(
        x[i].mantissa, static_cast<std::uint64_t>(emax - x[i].exponent));
    const std::uint64_t wa = align_mantissa(
        wgt[i].mantissa, static_cast<std::uint64_t>(wemax - wgt[i].exponent));
    const std::int64_t prod = static_cast<std::int64_t>(xa * wa);
    acc += (x[i].sign != wgt[i].sign) ? -prod : prod;
  }
  if (acc == 0) return 0.0;

  // INT-to-FP conversion truncates the magnitude to the format's compute
  // mantissa width.
  const bool neg = acc < 0;
  std::uint64_t mag = static_cast<std::uint64_t>(neg ? -acc : acc);
  const int pbit = bit_width(mag) - 1;
  const int keep = p.compute_mant_bits();
  if (pbit + 1 > keep) {
    const int drop = pbit + 1 - keep;
    mag = (mag >> drop) << drop;
  }
  const double value =
      std::ldexp(static_cast<double>(mag),
                 (emax - bias - mb) + (wemax - bias - mb));
  return neg ? -value : value;
}

double BehavioralDcim::dot_fp_reference(
    const std::vector<double>& inputs,
    const std::vector<double>& weights) const {
  SEGA_EXPECTS(inputs.size() == weights.size());
  const Precision& p = dp_.precision;
  double acc = 0.0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    acc += fp_quantize(p, inputs[i]) * fp_quantize(p, weights[i]);
  }
  return acc;
}

}  // namespace sega
