#include "arch/space.h"

#include "util/assert.h"
#include "util/math.h"

namespace sega {

DesignSpace::DesignSpace(std::int64_t wstore, Precision precision,
                         SpaceConstraints limits)
    : wstore_(wstore), precision_(std::move(precision)), limits_(limits) {
  SEGA_EXPECTS(wstore_ > 0);
  const std::int64_t bw = precision_.weight_bits();
  // N must be a power of two with N >= min_n_over_bw * Bw.
  min_n_exp_ = ceil_log2(
      static_cast<std::uint64_t>(limits_.min_n_over_bw * bw));
  max_n_exp_ = ilog2(static_cast<std::uint64_t>(limits_.max_n));
  max_h_exp_ = ilog2(static_cast<std::uint64_t>(limits_.max_h));
  SEGA_ENSURES(min_n_exp_ <= max_n_exp_);
}

std::int64_t DesignSpace::max_k() const { return precision_.input_bits(); }

std::optional<DesignPoint> DesignSpace::decode(int n_exp, int h_exp,
                                               std::int64_t k) const {
  if (n_exp < min_n_exp_ || n_exp > max_n_exp_) return std::nullopt;
  if (h_exp < min_h_exp() || h_exp > max_h_exp_) return std::nullopt;
  if (k < 1 || k > max_k()) return std::nullopt;

  const std::int64_t bw = precision_.weight_bits();
  const std::int64_t n = static_cast<std::int64_t>(pow2(n_exp));
  const std::int64_t h = static_cast<std::int64_t>(pow2(h_exp));
  const std::int64_t bits = wstore_ * bw;
  if (bits % (n * h) != 0) return std::nullopt;
  const std::int64_t l = bits / (n * h);
  if (l < 1 || l > limits_.max_l) return std::nullopt;

  DesignPoint dp;
  dp.arch = arch_for(precision_);
  dp.precision = precision_;
  dp.n = n;
  dp.h = h;
  dp.l = l;
  dp.k = k;
  const Validity v = validate_design(dp, wstore_, limits_);
  if (!v.ok) return std::nullopt;
  return dp;
}

std::vector<DesignPoint> DesignSpace::enumerate_all() const {
  std::vector<DesignPoint> out;
  for (int ne = min_n_exp_; ne <= max_n_exp_; ++ne) {
    for (int he = min_h_exp(); he <= max_h_exp_; ++he) {
      for (std::int64_t k = 1; k <= max_k(); ++k) {
        if (auto dp = decode(ne, he, k)) out.push_back(*dp);
      }
    }
  }
  return out;
}

std::optional<DesignPoint> DesignSpace::sample(Rng& rng,
                                               int max_attempts) const {
  for (int i = 0; i < max_attempts; ++i) {
    const int ne = static_cast<int>(rng.uniform_int(min_n_exp_, max_n_exp_));
    const int he = static_cast<int>(rng.uniform_int(min_h_exp(), max_h_exp_));
    const std::int64_t k = rng.uniform_int(1, max_k());
    if (auto dp = decode(ne, he, k)) return dp;
  }
  // Sparse feasible region: fall back to enumeration.
  const auto all = enumerate_all();
  if (all.empty()) return std::nullopt;
  return all[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(all.size()) - 1))];
}

}  // namespace sega
