#include "arch/precision.h"

#include "util/assert.h"
#include "util/strings.h"

namespace sega {

int Precision::compute_mant_bits() const {
  SEGA_EXPECTS(is_float());
  return mant_bits + 1;
}

int Precision::input_bits() const {
  return is_float() ? compute_mant_bits() : int_bits;
}

int Precision::weight_bits() const {
  return is_float() ? compute_mant_bits() : int_bits;
}

int Precision::total_bits() const {
  return is_float() ? 1 + exp_bits + mant_bits : int_bits;
}

bool Precision::operator==(const Precision& other) const {
  return kind == other.kind && int_bits == other.int_bits &&
         exp_bits == other.exp_bits && mant_bits == other.mant_bits;
}

namespace {

Precision make_int(int bits, const char* name) {
  Precision p;
  p.kind = PrecisionKind::kInt;
  p.int_bits = bits;
  p.name = name;
  return p;
}

Precision make_float(int exp_bits, int mant_bits, const char* name) {
  Precision p;
  p.kind = PrecisionKind::kFloat;
  p.int_bits = 0;
  p.exp_bits = exp_bits;
  p.mant_bits = mant_bits;
  p.name = name;
  return p;
}

}  // namespace

Precision precision_int2() { return make_int(2, "INT2"); }
Precision precision_int4() { return make_int(4, "INT4"); }
Precision precision_int8() { return make_int(8, "INT8"); }
Precision precision_int16() { return make_int(16, "INT16"); }
Precision precision_fp8_e4m3() { return make_float(4, 3, "FP8"); }
Precision precision_fp16() { return make_float(5, 10, "FP16"); }
Precision precision_bf16() { return make_float(8, 7, "BF16"); }
Precision precision_fp32() { return make_float(8, 23, "FP32"); }

std::vector<Precision> all_precisions() {
  return {precision_int2(), precision_int4(),  precision_int8(),
          precision_int16(), precision_fp8_e4m3(), precision_fp16(),
          precision_bf16(), precision_fp32()};
}

std::optional<Precision> precision_from_name(const std::string& name) {
  const std::string u = to_upper(trim(name));
  if (u == "INT2") return precision_int2();
  if (u == "INT4") return precision_int4();
  if (u == "INT8") return precision_int8();
  if (u == "INT16") return precision_int16();
  if (u == "FP8" || u == "FP8_E4M3" || u == "E4M3") return precision_fp8_e4m3();
  if (u == "FP16" || u == "FLOAT16" || u == "HALF") return precision_fp16();
  if (u == "BF16" || u == "BFLOAT16") return precision_bf16();
  if (u == "FP32" || u == "FLOAT32" || u == "FLOAT") return precision_fp32();
  return std::nullopt;
}

}  // namespace sega
