// DesignPoint — one candidate DCIM macro configuration, the unit of currency
// between the design-space explorer, the cost models and the generator.
//
// Parameter meanings follow Fig. 3 of the paper:
//   N : number of array columns (each column stores one weight *bit* slice)
//   H : column height = number of compute units per column = adder-tree fanin
//   L : weights sharing one compute unit (selected one bit at a time)
//   k : input bits fed per cycle (bit-serial slice width), 1 <= k <= Bx
//
// Derived: Wstore = N*H*L / Bw  (eq. 2/3), SRAM bits = N*H*L.
#pragma once

#include <cstdint>
#include <string>

#include "arch/precision.h"

namespace sega {

/// The two synthesizable templates of the paper.
enum class ArchKind {
  kMulCim,  ///< multiplier-based integer DCIM
  kFpCim,   ///< pre-aligned-based floating-point DCIM
};

const char* arch_kind_name(ArchKind kind);

/// Architecture implied by a precision (INT -> MUL-CIM, FP -> FP-CIM).
ArchKind arch_for(const Precision& precision);

struct DesignPoint {
  ArchKind arch = ArchKind::kMulCim;
  Precision precision;
  std::int64_t n = 0;  ///< N — array columns
  std::int64_t h = 0;  ///< H — column height
  std::int64_t l = 0;  ///< L — weights per compute unit
  std::int64_t k = 0;  ///< k — input bits per cycle

  /// Two's-complement weights (MUL-CIM only): the result fusion *subtracts*
  /// the MSB weight column instead of adding it, supporting signed weights
  /// with unsigned activations (the post-ReLU CNN case).  Same cost model —
  /// a subtractor and an adder are census-identical up to carry-in glue —
  /// so this is a post-DSE generation choice, not a genome dimension.
  bool signed_weights = false;

  /// Pipelined adder tree (extension): registers between tree levels turn
  /// the log2(H)-deep adder chain into one-adder pipeline stages, shrinking
  /// the clock period at the cost of inter-level DFFs and a gated (enabled)
  /// accumulator.  Throughput-per-cycle is unchanged; frequency rises.
  bool pipelined_tree = false;

  /// Weights stored: N*H*L / Bw.
  std::int64_t wstore() const;

  /// SRAM capacity in bits: N*H*L.
  std::int64_t sram_bits() const;

  /// Cycles to stream one full input operand: ceil(Bx / k).
  std::int64_t cycles_per_input() const;

  /// Short identifier, e.g. "MUL-CIM INT8 N=32 H=128 L=16 k=8".
  std::string to_string() const;

  bool operator==(const DesignPoint& other) const;
};

/// Bounds from the paper's §IV ("N is set to be greater than 4*Bw, L is no
/// greater than 64, H no greater than 2048") plus structural requirements.
/// Note: Fig. 6 itself uses N=32 with Bw=8, so the N bound is interpreted as
/// N >= 4*Bw (inclusive) — the strict reading would exclude the paper's own
/// showcase design.
struct SpaceConstraints {
  std::int64_t max_l = 64;
  std::int64_t max_h = 2048;
  std::int64_t min_n_over_bw = 4;  ///< require N >= min_n_over_bw * Bw
  std::int64_t max_n = 1 << 14;    ///< hard upper bound to keep space finite
};

/// Result of validity analysis; reason is empty when valid.
struct Validity {
  bool ok = false;
  std::string reason;
};

/// Full structural + constraint check of a design point against a target
/// weight-storage capacity.
Validity validate_design(const DesignPoint& dp, std::int64_t wstore_target,
                         const SpaceConstraints& limits);

}  // namespace sega
