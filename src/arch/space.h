// DesignSpace — the finite, enumerable domain of valid design points for a
// (Wstore, precision) specification.
//
// The explorer's genome is (log2 N, log2 H, k); L is derived from the
// equality constraint N*H*L = Wstore*Bw, which makes every decoded genome
// either exactly feasible or rejectable — the GA never wastes evaluations on
// storage-infeasible candidates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/design_point.h"
#include "util/rng.h"

namespace sega {

class DesignSpace {
 public:
  DesignSpace(std::int64_t wstore, Precision precision,
              SpaceConstraints limits = {});

  std::int64_t wstore() const { return wstore_; }
  const Precision& precision() const { return precision_; }
  const SpaceConstraints& limits() const { return limits_; }

  /// Decode (n_exp, h_exp, k) to a validated design point; nullopt when the
  /// combination is infeasible (e.g. derived L not integral or out of range).
  std::optional<DesignPoint> decode(int n_exp, int h_exp,
                                    std::int64_t k) const;

  /// Inclusive genome bounds.
  int min_n_exp() const { return min_n_exp_; }
  int max_n_exp() const { return max_n_exp_; }
  int min_h_exp() const { return 1; }
  int max_h_exp() const { return max_h_exp_; }
  std::int64_t max_k() const;

  /// Exhaustive enumeration of every valid design point (ground truth for
  /// testing the GA; the per-spec domain is a few thousand points at most).
  std::vector<DesignPoint> enumerate_all() const;

  /// Uniformly sample a valid design point; nullopt if the space is empty.
  std::optional<DesignPoint> sample(Rng& rng, int max_attempts = 256) const;

 private:
  std::int64_t wstore_;
  Precision precision_;
  SpaceConstraints limits_;
  int min_n_exp_;
  int max_n_exp_;
  int max_h_exp_;
};

}  // namespace sega
