#include "arch/design_point.h"

#include "util/assert.h"
#include "util/math.h"
#include "util/strings.h"

namespace sega {

const char* arch_kind_name(ArchKind kind) {
  switch (kind) {
    case ArchKind::kMulCim: return "MUL-CIM";
    case ArchKind::kFpCim: return "FP-CIM";
  }
  SEGA_ASSERT(false);
  return "";
}

ArchKind arch_for(const Precision& precision) {
  return precision.is_float() ? ArchKind::kFpCim : ArchKind::kMulCim;
}

std::int64_t DesignPoint::wstore() const {
  const std::int64_t bw = precision.weight_bits();
  SEGA_EXPECTS(bw > 0);
  return n * h * l / bw;
}

std::int64_t DesignPoint::sram_bits() const { return n * h * l; }

std::int64_t DesignPoint::cycles_per_input() const {
  SEGA_EXPECTS(k > 0);
  return static_cast<std::int64_t>(
      ceil_div(static_cast<std::uint64_t>(precision.input_bits()),
               static_cast<std::uint64_t>(k)));
}

std::string DesignPoint::to_string() const {
  return strfmt("%s %s N=%lld H=%lld L=%lld k=%lld",
                arch_kind_name(arch), precision.name.c_str(),
                static_cast<long long>(n), static_cast<long long>(h),
                static_cast<long long>(l), static_cast<long long>(k));
}

bool DesignPoint::operator==(const DesignPoint& other) const {
  return arch == other.arch && precision == other.precision && n == other.n &&
         h == other.h && l == other.l && k == other.k;
}

Validity validate_design(const DesignPoint& dp, std::int64_t wstore_target,
                         const SpaceConstraints& limits) {
  auto fail = [](std::string reason) {
    return Validity{false, std::move(reason)};
  };
  const std::int64_t bw = dp.precision.weight_bits();
  const std::int64_t bx = dp.precision.input_bits();

  if (dp.arch != arch_for(dp.precision)) {
    return fail(strfmt("architecture %s does not match precision %s",
                       arch_kind_name(dp.arch), dp.precision.name.c_str()));
  }
  if (dp.n <= 0 || dp.h <= 0 || dp.l <= 0 || dp.k <= 0) {
    return fail("all of N, H, L, k must be positive");
  }
  // N and H shape the adder tree / fusion structure: powers of two keep the
  // templates regular (the paper's examples all use powers of two).
  if (!is_pow2(static_cast<std::uint64_t>(dp.n))) {
    return fail("N must be a power of two");
  }
  if (!is_pow2(static_cast<std::uint64_t>(dp.h)) || dp.h < 2) {
    return fail("H must be a power of two >= 2");
  }
  if (dp.k > bx) {
    return fail(strfmt("k=%lld exceeds input width Bx=%lld",
                       static_cast<long long>(dp.k),
                       static_cast<long long>(bx)));
  }
  if (dp.l > limits.max_l) {
    return fail(strfmt("L=%lld exceeds limit %lld",
                       static_cast<long long>(dp.l),
                       static_cast<long long>(limits.max_l)));
  }
  if (dp.h > limits.max_h) {
    return fail(strfmt("H=%lld exceeds limit %lld",
                       static_cast<long long>(dp.h),
                       static_cast<long long>(limits.max_h)));
  }
  if (dp.n < limits.min_n_over_bw * bw) {
    return fail(strfmt("N=%lld below %lld*Bw=%lld",
                       static_cast<long long>(dp.n),
                       static_cast<long long>(limits.min_n_over_bw),
                       static_cast<long long>(limits.min_n_over_bw * bw)));
  }
  if (dp.n > limits.max_n) {
    return fail(strfmt("N=%lld exceeds limit %lld",
                       static_cast<long long>(dp.n),
                       static_cast<long long>(limits.max_n)));
  }
  if (dp.n * dp.h * dp.l != wstore_target * bw) {
    return fail(strfmt(
        "storage constraint violated: N*H*L=%lld but Wstore*Bw=%lld",
        static_cast<long long>(dp.n * dp.h * dp.l),
        static_cast<long long>(wstore_target * bw)));
  }
  return Validity{true, ""};
}

}  // namespace sega
