// Data precision formats supported by SEGA-DCIM.
//
// The paper evaluates INT2, INT4, INT8, INT16, FP8, FP16, FP32 and BF16.
// Integer formats drive the multiplier-based architecture (MUL-CIM); floating
// point formats drive the pre-aligned architecture (FP-CIM), whose DCIM array
// performs integer MAC on mantissas after exponent alignment.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace sega {

enum class PrecisionKind { kInt, kFloat };

/// A numeric format.  For kInt only int_bits is meaningful; for kFloat the
/// layout is 1 sign bit + exp_bits + mant_bits (stored mantissa, excluding
/// the implicit leading one).
struct Precision {
  PrecisionKind kind = PrecisionKind::kInt;
  int int_bits = 8;   ///< total bits of the integer format
  int exp_bits = 0;   ///< BE — exponent field width (kFloat only)
  int mant_bits = 0;  ///< stored mantissa width, no implicit bit (kFloat only)
  std::string name = "INT8";

  bool is_float() const { return kind == PrecisionKind::kFloat; }

  /// Mantissa width used for computation (stored bits + implicit one).
  int compute_mant_bits() const;

  /// Bx in the paper's models: the serialized input operand width fed to the
  /// DCIM array (integer width, or compute mantissa width for floats).
  int input_bits() const;

  /// Bw in the paper's models: bits of storage per weight in the array
  /// (integer width, or compute mantissa width for floats — eq. (3) uses BM
  /// for the FP storage constraint).
  int weight_bits() const;

  /// Total encoded width of one value (sign + exponent + mantissa for FP).
  int total_bits() const;

  bool operator==(const Precision& other) const;
};

/// The eight presets the paper evaluates, in the Fig. 7 order
/// INT2, INT4, INT8, INT16, FP8(E4M3), FP16, BF16, FP32.
Precision precision_int2();
Precision precision_int4();
Precision precision_int8();
Precision precision_int16();
Precision precision_fp8_e4m3();
Precision precision_fp16();
Precision precision_bf16();
Precision precision_fp32();

/// All presets in Fig. 7 order.
std::vector<Precision> all_precisions();

/// Parse "INT8", "int8", "FP16", "BF16", "FP8", "FP8_E4M3", "FP32"...
/// Returns nullopt for unknown names.
std::optional<Precision> precision_from_name(const std::string& name);

}  // namespace sega
